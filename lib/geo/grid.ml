(* The two grids of the protocol (§III-B, Figures 3-4):

   - the PUBLIC grid P: an m-column × n-row lattice over the user's square
     cloaking region CR, chosen by the user (at least the server-defined
     minimum dimensions);
   - the PRIVATE partition Q: the server's own a×b partition of its POI
     records over the same area, every cell padded with dummy records to a
     uniform rmax (unequal cell sizes would let the server fingerprint
     queries).

   The association maps each public cell P_{i,j} to the private cell
   Q containing its centre; the OT payload for P_{i,j} is that private
   cell's id and key. *)

type cell = { row : int; col : int }

let cell_equal a b = a.row = b.row && a.col = b.col
let pp_cell fmt c = Format.fprintf fmt "P[%d,%d]" c.row c.col

(* ------------------------------------------------------------------ *)
(* A lattice over a rectangle                                           *)
(* ------------------------------------------------------------------ *)

type lattice = {
  area : Coord.Rect.t;
  rows : int;   (* n *)
  cols : int;   (* m *)
}

let lattice ~area ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Grid.lattice: empty";
  { area; rows; cols }

let lattice_rows l = l.rows
let lattice_cols l = l.cols
let lattice_area l = l.area

let cell_width l = Coord.Rect.width l.area /. float_of_int l.cols
let cell_height l = Coord.Rect.height l.area /. float_of_int l.rows

(* The cell containing a coordinate; boundary points go to the lower cell,
   the far edges clamp inward so the whole closed rectangle is covered. *)
let cell_of_coord l (c : Coord.t) : cell =
  if not (Coord.Rect.contains l.area c) then
    invalid_arg "Grid.cell_of_coord: outside the area";
  let fx = (Coord.x c -. Coord.x (Coord.Rect.min l.area)) /. cell_width l in
  let fy = (Coord.y c -. Coord.y (Coord.Rect.min l.area)) /. cell_height l in
  let clamp v hi = min (max v 0) (hi - 1) in
  { col = clamp (int_of_float fx) l.cols; row = clamp (int_of_float fy) l.rows }

let cell_rect l (c : cell) : Coord.Rect.t =
  if c.row < 0 || c.row >= l.rows || c.col < 0 || c.col >= l.cols then
    invalid_arg "Grid.cell_rect: out of range";
  let x0 = Coord.x (Coord.Rect.min l.area) +. (float_of_int c.col *. cell_width l) in
  let y0 = Coord.y (Coord.Rect.min l.area) +. (float_of_int c.row *. cell_height l) in
  Coord.Rect.make
    ~min:(Coord.make ~x:x0 ~y:y0)
    ~max:(Coord.make ~x:(x0 +. cell_width l) ~y:(y0 +. cell_height l))

let cell_center l c = Coord.Rect.center (cell_rect l c)

(* ------------------------------------------------------------------ *)
(* Private partition Q                                                  *)
(* ------------------------------------------------------------------ *)

type partition = {
  q : lattice;
  rmax : int;                       (* records per cell, uniform *)
  cells : Poi.t list array;         (* row-major; exactly rmax each *)
  real_counts : int array;          (* non-dummy count per cell *)
  mutable next_dummy : int;         (* next free padding-record id *)
}

let q_lattice p = p.q
let rmax p = p.rmax

let q_index (p : partition) (c : cell) : int = (c.row * p.q.cols) + c.col

let cell_count p = p.q.rows * p.q.cols

(* Inverse of [q_index]: the row/col cell of a flat IDQ. *)
let cell_of_index (p : partition) (idx : int) : cell =
  if idx < 0 || idx >= cell_count p then
    invalid_arg "Grid.cell_of_index: out of range";
  { row = idx / p.q.cols; col = idx mod p.q.cols }

(* POIs of a private cell by flat index (the IDQ of the protocol). *)
let cell_pois (p : partition) (idx : int) : Poi.t list =
  if idx < 0 || idx >= cell_count p then invalid_arg "Grid.cell_pois: out of range";
  p.cells.(idx)

let real_count p idx = p.real_counts.(idx)

(* Partition the POIs over an a×b lattice on [area].  Every cell is padded
   with dummies up to [rmax] (default: the maximum real occupancy).
   Raises if a cell exceeds a caller-supplied rmax — variation in cell
   size "could lead to the server identifying the user" (§III-B), so it is
   a hard error, never silently truncated. *)
let partition ?rmax ~area ~rows ~cols (pois : Poi.t list) : partition =
  let q = lattice ~area ~rows ~cols in
  let buckets = Array.make (rows * cols) [] in
  List.iter
    (fun poi ->
      if Poi.is_dummy poi then invalid_arg "Grid.partition: dummy input";
      let c = cell_of_coord q (Poi.position poi) in
      let i = (c.row * cols) + c.col in
      buckets.(i) <- poi :: buckets.(i))
    pois;
  let real_counts = Array.map List.length buckets in
  let max_occupancy = Array.fold_left max 0 real_counts in
  let rmax =
    match rmax with
    | None -> max max_occupancy 1
    | Some r ->
      if r < max_occupancy then
        invalid_arg "Grid.partition: a cell exceeds rmax"
      else r
  in
  (* Dummy ids live above every real id so they can never collide. *)
  let max_id =
    List.fold_left (fun acc poi -> max acc (Poi.id poi)) 0 pois
  in
  let next_dummy = ref (max_id + 1) in
  let cells =
    Array.map
      (fun bucket ->
        let missing = rmax - List.length bucket in
        let dummies =
          List.init missing (fun _ ->
              let d = Poi.dummy ~id:!next_dummy in
              incr next_dummy;
              d)
        in
        List.rev_append bucket dummies)
      buckets
  in
  { q; rmax; cells; real_counts; next_dummy = !next_dummy }

(* Replace the real records of one cell — the streaming-update entry
   point.  The uniform-occupancy invariant is the same privacy
   requirement as at build time, so input dummies and rmax overflow are
   hard errors, never silently fixed; the cell is re-padded to rmax
   with fresh dummy ids drawn above every id the partition has used. *)
let set_cell_pois (p : partition) (idx : int) (pois : Poi.t list) : unit =
  if idx < 0 || idx >= cell_count p then
    invalid_arg "Grid.set_cell_pois: out of range";
  List.iter
    (fun poi ->
      if Poi.is_dummy poi then invalid_arg "Grid.set_cell_pois: dummy input";
      if not (cell_equal (cell_of_coord p.q (Poi.position poi))
                (cell_of_index p idx))
      then invalid_arg "Grid.set_cell_pois: POI outside the cell")
    pois;
  let real = List.length pois in
  if real > p.rmax then invalid_arg "Grid.set_cell_pois: cell exceeds rmax";
  List.iter
    (fun poi ->
      if Poi.id poi >= p.next_dummy then p.next_dummy <- Poi.id poi + 1)
    pois;
  let dummies =
    List.init (p.rmax - real) (fun _ ->
        let d = Poi.dummy ~id:p.next_dummy in
        p.next_dummy <- p.next_dummy + 1;
        d)
  in
  p.cells.(idx) <- pois @ dummies;
  p.real_counts.(idx) <- real

(* ------------------------------------------------------------------ *)
(* Public-to-private association (the key table's geometry)             *)
(* ------------------------------------------------------------------ *)

(* The private cell id backing public cell [c] of lattice [p]: the Q cell
   containing P_{i,j}'s centre.  Requires the public area to lie inside
   the partitioned area. *)
let associate (p : lattice) (part : partition) (c : cell) : int =
  let centre = cell_center p c in
  if not (Coord.Rect.contains (Coord.Rect.make
                                 ~min:(Coord.Rect.min part.q.area)
                                 ~max:(Coord.Rect.max part.q.area)) centre)
  then invalid_arg "Grid.associate: public grid outside the private area";
  q_index part (cell_of_coord part.q centre)

(* Sanity predicate used by tests: every public cell maps somewhere. *)
let total_association (p : lattice) (part : partition) : bool =
  let ok = ref true in
  for row = 0 to p.rows - 1 do
    for col = 0 to p.cols - 1 do
      match associate p part { row; col } with
      | idx -> if idx < 0 || idx >= cell_count part then ok := false
      | exception Invalid_argument _ -> ok := false
    done
  done;
  !ok
