(* Synthetic POI workloads.  The paper evaluates on synthetic matrices of
   random data; we go slightly further and generate city-like POI layouts
   (dense clusters plus uniform background) so the examples and benches
   exercise realistic skew.  Everything is deterministic given the seed. *)

open Lbq_crypto

type spec = {
  area : Coord.Rect.t;
  count : int;
  clusters : int;            (* number of dense centres *)
  cluster_fraction : float;  (* share of POIs inside clusters *)
  cluster_radius : float;    (* cluster std-dev in metres *)
  categories : string array;
}

let default_categories =
  [| "atm"; "cafe"; "fuel"; "hospital"; "police"; "pharmacy"; "hotel"; "parking" |]

let city ?(side = 10_000.) ?(count = 2_000) ?(clusters = 8)
    ?(cluster_fraction = 0.7) ?(cluster_radius = 400.)
    ?(categories = default_categories) () =
  { area =
      Coord.Rect.make ~min:(Coord.make ~x:0. ~y:0.)
        ~max:(Coord.make ~x:side ~y:side);
    count; clusters; cluster_fraction; cluster_radius; categories }

(* Uniform float in [0, 1) from 8 DRBG bytes. *)
let uniform drbg =
  let s = Drbg.bytes drbg 8 in
  let v = ref 0 in
  (* 52 bits of mantissa is plenty. *)
  for i = 0 to 5 do
    v := (!v lsl 8) lor Char.code s.[i]
  done;
  float_of_int !v /. float_of_int (1 lsl 48)

(* Standard normal via Box-Muller. *)
let gaussian drbg =
  let u1 = Float.max (uniform drbg) 1e-12 and u2 = uniform drbg in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let in_area area c = Coord.Rect.contains area c

let generate ?(seed = "lbq-synth") (spec : spec) : Poi.t list =
  if spec.count <= 0 then invalid_arg "Synth.generate: count <= 0";
  if Array.length spec.categories = 0 then
    invalid_arg "Synth.generate: no categories";
  let drbg = Drbg.create ~domain:"synth" ~seed () in
  let minc = Coord.Rect.min spec.area and w = Coord.Rect.width spec.area in
  let h = Coord.Rect.height spec.area in
  let random_point () =
    Coord.make
      ~x:(Coord.x minc +. (uniform drbg *. w))
      ~y:(Coord.y minc +. (uniform drbg *. h))
  in
  let centres = Array.init (max spec.clusters 1) (fun _ -> random_point ()) in
  let rec clustered_point () =
    let centre = centres.(Drbg.int drbg (Array.length centres)) in
    let c =
      Coord.make
        ~x:(Coord.x centre +. (gaussian drbg *. spec.cluster_radius))
        ~y:(Coord.y centre +. (gaussian drbg *. spec.cluster_radius))
    in
    if in_area spec.area c then c else clustered_point ()
  in
  List.init spec.count (fun id ->
      let position =
        if spec.clusters > 0
           && uniform drbg < spec.cluster_fraction
        then clustered_point ()
        else random_point ()
      in
      let category = spec.categories.(Drbg.int drbg (Array.length spec.categories)) in
      Poi.make ~id ~position ~category
        ~name:(Printf.sprintf "%s-%04d" category id))

(* A deterministic update stream over an existing partition: each step
   picks a cell and replaces its real records with a fresh draw of
   [0, rmax] POIs placed inside that cell — the churn a live OSM-style
   feed would produce.  Ids count up from [base_id] so they never
   collide with the build-time database (whose ids are list indices).
   Points are inset from the cell edges so float rounding can never
   re-bucket one into a neighbour. *)
let churn ?(seed = "lbq-churn") ?(base_id = 1_000_000)
    ?(categories = default_categories) ~(partition : Grid.partition)
    ~steps () : Poi_file.update list =
  if steps <= 0 then invalid_arg "Synth.churn: steps <= 0";
  if Array.length categories = 0 then invalid_arg "Synth.churn: no categories";
  let drbg = Drbg.create ~domain:"churn" ~seed () in
  let q = Grid.q_lattice partition in
  let cells = Grid.cell_count partition in
  let rmax = Grid.rmax partition in
  let next_id = ref base_id in
  List.init steps (fun _ ->
      let cell = Drbg.int drbg cells in
      let rect = Grid.cell_rect q (Grid.cell_of_index partition cell) in
      let minc = Coord.Rect.min rect in
      let w = Coord.Rect.width rect and h = Coord.Rect.height rect in
      let inset lo span u = lo +. (span *. (0.05 +. (0.9 *. u))) in
      let count = Drbg.int drbg (rmax + 1) in
      let pois =
        List.init count (fun _ ->
            let id = !next_id in
            incr next_id;
            let position =
              Coord.make
                ~x:(inset (Coord.x minc) w (uniform drbg))
                ~y:(inset (Coord.y minc) h (uniform drbg))
            in
            let category = categories.(Drbg.int drbg (Array.length categories)) in
            Poi.make ~id ~position ~category
              ~name:(Printf.sprintf "%s-%04d" category id))
      in
      { Poi_file.cell; pois })

(* A user trajectory: a random walk of [steps] positions inside the area,
   step length [stride] metres (for the repeated-query example). *)
let walk ?(seed = "lbq-walk") ~area ~steps ~stride () : Coord.t list =
  if steps <= 0 then invalid_arg "Synth.walk: steps <= 0";
  let drbg = Drbg.create ~domain:"walk" ~seed () in
  let minc = Coord.Rect.min area and maxc = Coord.Rect.max area in
  let clamp v lo hi = Float.min (Float.max v lo) hi in
  let start =
    Coord.make
      ~x:(Coord.x minc +. (uniform drbg *. Coord.Rect.width area))
      ~y:(Coord.y minc +. (uniform drbg *. Coord.Rect.height area))
  in
  let rec go acc current n =
    if n = 0 then List.rev acc
    else begin
      let angle = uniform drbg *. 2. *. Float.pi in
      let next =
        Coord.make
          ~x:(clamp (Coord.x current +. (stride *. Float.cos angle))
                (Coord.x minc) (Coord.x maxc))
          ~y:(clamp (Coord.y current +. (stride *. Float.sin angle))
                (Coord.y minc) (Coord.y maxc))
      in
      go (next :: acc) next (n - 1)
    end
  in
  go [ start ] start (steps - 1)
