(* Montgomery modular arithmetic for odd moduli, an alternative reduction
   engine to {!Barrett}.  Operands live in Montgomery form (a * R mod n);
   {!Gr.Server.respond} uses this engine by default since honest stage-2
   moduli N = Q0*Q1 are odd.

   The hot core is word-level CIOS (coarsely integrated operand
   scanning) at an internal radix of 2^29, wider than {!Nat}'s global
   2^26: limb products of 29-bit digits still fit a 63-bit OCaml int
   with room to accumulate four products plus carries per column, which
   lets the sweep process TWO operand digits per pass (halving the
   iteration count, where loop overhead — not the multiplies — is what
   dominates on boxed-int bignum code).  Residues are repacked 26 <-> 29
   bits only at the engine boundary; R = 2^(29*k) for the engine's
   even window width k.

   Multiplication [cios2_into] fuses product and REDC reduction in one
   sweep: each pass consumes b_i, b_{i+1}, picks the two Montgomery
   quotient digits m0, m1 that zero the bottom columns, and every inner
   column accumulates a_j*b_i + a_{j-1}*b_{i+1} + m0*n_j + m1*n_{j-1}
   before shifting down two limbs.  The invariant t < 2n keeps the
   accumulator in k+1 limbs.

   Squaring [sqr2_into] is the dedicated path the window ladders spend
   ~5/6 of their time in: pass i contributes
     a_i^2*B^i + 2*a_i * sum_{j>i} a_j*B^j
   so each symmetric cross product is computed once and doubled — 1.5k^2
   limb products against the multiply's 2k^2.  Front-loading the doubled
   terms relaxes the accumulator invariant to t < 3n (top limb <= 2, up
   to two trailing subtractions), which [reduce_out] absorbs.

   All intermediates live in per-domain {!Scratch} slots, so a
   steady-state [powm_sched] ladder performs its thousands of modular
   operations without allocating a word per iteration.

   The pre-rewrite multiply-then-REDC engine survives untouched as
   [*_reference] (in 26-bit {!Nat} arithmetic with its own R): the
   crosscheck property tests assert the two engines agree on every
   Z-level result, and [bench powm] measures old vs new on the same
   schedules. *)

let limb_bits = Nat.limb_bits
let base = Nat.base
let mask = Nat.mask

(* Engine radix: 29-bit digits.  4 * (2^29 - 1)^2 + carries < 2^62, so a
   column can take four limb products in one 63-bit int. *)
let elb = 29
let ebase = 1 lsl elb
let emask = ebase - 1

type t = {
  modulus : Z.t;
  (* Reference-engine fields, 26-bit {!Nat} radix with R = B^k. *)
  n : Nat.t;          (* the modulus, exactly k limbs, odd *)
  k : int;
  n' : int;           (* -n^{-1} mod B *)
  r2 : Nat.t;         (* R^2 mod n, for conversion into Montgomery form *)
  one_m : Nat.t;      (* R mod n = Montgomery form of 1 *)
  (* Fused-engine fields, 29-bit radix with Re = 2^(29*ke). *)
  ke : int;           (* engine window width: even, >= 4 *)
  ne : int array;     (* modulus as ke 29-bit digits (may have zero top) *)
  n'e : int;          (* -n^{-1} mod 2^29 *)
  r2e : int array;    (* Re^2 mod n as a ke-digit window *)
  mutable tick : int ref option;
    (* optional modular-multiplication counter, mirroring {!Barrett} *)
}

(* Inverse of an odd digit modulo 2^bits (bits <= 32), by Hensel lifting:
   six doublings of precision from 1 bit cover 64. *)
let inv_digit ~(dmask : int) (n0 : int) : int =
  let x = ref 1 in
  for _ = 1 to 6 do
    x := (!x * (2 - (n0 * !x land dmask))) land dmask
  done;
  assert ((n0 * !x) land dmask = 1);
  !x

(* Little-endian bit-stream repack between limb radices.  Source digits
   must be in range; destination is fully overwritten.  The accumulator
   never exceeds src_lb + dst_lb - 1 <= 57 bits. *)
let repack ~(src : int array) ~(src_len : int) ~(src_lb : int)
    ~(dst : int array) ~(dst_len : int) ~(dst_lb : int) =
  let dmask = (1 lsl dst_lb) - 1 in
  let acc = ref 0 and nbits = ref 0 and di = ref 0 in
  for i = 0 to src_len - 1 do
    acc := !acc lor (Array.unsafe_get src i lsl !nbits);
    nbits := !nbits + src_lb;
    while !nbits >= dst_lb do
      if !di < dst_len then Array.unsafe_set dst !di (!acc land dmask);
      incr di;
      acc := !acc lsr dst_lb;
      nbits := !nbits - dst_lb
    done
  done;
  while !di < dst_len do
    Array.unsafe_set dst !di (!acc land dmask);
    acc := !acc lsr dst_lb;
    incr di
  done

(* Canonical 26-bit residue (< n) -> fresh ke-digit engine window. *)
let widen t (a : Nat.t) : int array =
  let w = Array.make t.ke 0 in
  repack ~src:a ~src_len:(Array.length a) ~src_lb:limb_bits ~dst:w
    ~dst_len:t.ke ~dst_lb:elb;
  w

let widen_into t (w : int array) (a : Nat.t) =
  repack ~src:a ~src_len:(Array.length a) ~src_lb:limb_bits ~dst:w
    ~dst_len:t.ke ~dst_lb:elb

(* Engine window (value < n) -> canonical 26-bit Nat. *)
let narrow t (w : int array) : Nat.t =
  let len26 = ((t.ke * elb) + limb_bits - 1) / limb_bits in
  let out = Array.make len26 0 in
  repack ~src:w ~src_len:t.ke ~src_lb:elb ~dst:out ~dst_len:len26
    ~dst_lb:limb_bits;
  Nat.normalize out

let create (modulus : Z.t) : t =
  if Z.sign modulus <= 0 then invalid_arg "Montgomery.create: modulus <= 0";
  if Z.is_even modulus then invalid_arg "Montgomery.create: modulus must be odd";
  let n = Z.to_nat modulus in
  let k = Array.length n in
  let n' = (base - inv_digit ~dmask:mask n.(0)) land mask in
  (* Reference R mod n and R^2 mod n by repeated modular doubling instead
     of a 2k-limb product + Knuth division: per-query context setup
     matters because the server builds one context per stage-2 query.
     Start from B^(k-1), which is below the k-limb odd n (n = B^(k-1)
     would be even); limb_bits doublings reach R = B^k mod n, and
     k*limb_bits more reach R^2 = R * 2^(k*limb_bits) mod n. *)
  let buf = Array.make (k + 1) 0 in
  if k = 1 then buf.(0) <- 1 mod n.(0)  (* n = 1: the ring is trivial *)
  else buf.(k - 1) <- 1;
  let ge_n () =
    buf.(k) <> 0
    ||
    let rec go i =
      i < 0 || (if buf.(i) <> n.(i) then buf.(i) > n.(i) else go (i - 1))
    in
    go (k - 1)
  in
  let sub_n () =
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let t = buf.(i) - n.(i) - !borrow in
      buf.(i) <- t land mask;
      borrow := (t lsr limb_bits) land 1
    done;
    buf.(k) <- buf.(k) - !borrow
  in
  let double_mod () =
    let carry = ref 0 in
    for i = 0 to k do
      let t = (buf.(i) lsl 1) lor !carry in
      buf.(i) <- t land mask;
      carry := t lsr limb_bits
    done;
    (* buf < n <= B^k, so the doubled value fits in k+1 limbs *)
    if ge_n () then sub_n ()
  in
  for _ = 1 to limb_bits do double_mod () done;
  let one_m = Nat.normalize (Array.sub buf 0 k) in
  for _ = 1 to k * limb_bits do double_mod () done;
  let r2 = Nat.normalize (Array.sub buf 0 k) in
  (* Fused-engine setup at radix 2^29.  The window is rounded up to an
     even width >= 4: the 2-way sweeps consume digit pairs, and the
     squaring peels its last pass.  Padding digits of n are zero, which
     the sweeps tolerate (t < 2n still fits k+1 digits). *)
  let bits = Z.numbits modulus in
  let ke =
    let m = (bits + elb - 1) / elb in
    let m = if m land 1 = 1 then m + 1 else m in
    if m < 4 then 4 else m
  in
  let ne = Array.make ke 0 in
  repack ~src:n ~src_len:k ~src_lb:limb_bits ~dst:ne ~dst_len:ke ~dst_lb:elb;
  let n'e = (ebase - inv_digit ~dmask:emask ne.(0)) land emask in
  let r2e =
    if Z.equal modulus Z.one then Array.make ke 0
    else begin
      (* Start from 2^(bits-1) < n (n odd, n >= 3) and double up to
         Re^2 = 2^(2 * 29 * ke) mod n. *)
      let e = 29 * ke in
      let buf = Array.make (ke + 1) 0 in
      buf.((bits - 1) / elb) <- 1 lsl ((bits - 1) mod elb);
      let ge_n () =
        buf.(ke) <> 0
        ||
        let rec go i =
          i < 0 || (if buf.(i) <> ne.(i) then buf.(i) > ne.(i) else go (i - 1))
        in
        go (ke - 1)
      in
      let sub_n () =
        let borrow = ref 0 in
        for i = 0 to ke - 1 do
          let t = buf.(i) - ne.(i) - !borrow in
          buf.(i) <- t land emask;
          borrow := (t lsr elb) land 1
        done;
        buf.(ke) <- buf.(ke) - !borrow
      in
      for _ = 1 to (2 * e) - (bits - 1) do
        let carry = ref 0 in
        for i = 0 to ke do
          let t = (buf.(i) lsl 1) lor !carry in
          buf.(i) <- t land emask;
          carry := t lsr elb
        done;
        if ge_n () then sub_n ()
      done;
      Array.sub buf 0 ke
    end
  in
  { modulus; n; k; n'; r2; one_m; ke; ne; n'e; r2e; tick = None }

let modulus t = t.modulus
let k_limbs t = t.ke

(* Attach or detach a per-multiplication counter, as in {!Barrett}. *)
let set_counter t c = t.tick <- c

let counting t r f =
  let saved = t.tick in
  t.tick <- Some r;
  Fun.protect ~finally:(fun () -> t.tick <- saved) f

let tick t = match t.tick with Some r -> incr r | None -> ()

(* REDC(T) = T * R^{-1} mod n for T < n * R in 26-bit radix: the
   pre-rewrite reduction, kept verbatim for the [*_reference] engine. *)
let redc t (tt : Nat.t) : Nat.t =
  let buf = Array.make ((2 * t.k) + 1) 0 in
  Array.blit tt 0 buf 0 (Array.length tt);
  for i = 0 to t.k - 1 do
    let m = (Array.unsafe_get buf i * t.n') land mask in
    Nat.addmul_1 buf i t.n m
    (* buf.(i) is now 0 mod B *)
  done;
  let hi = Nat.normalize (Array.sub buf t.k (t.k + 1)) in
  if Nat.compare hi t.n >= 0 then Nat.sub hi t.n else hi

(* ------------------------------------------------------------------ *)
(* The fused 29-bit CIOS core                                          *)
(* ------------------------------------------------------------------ *)

(* Shared epilogue: buf[off .. off+k] holds a value < 3n (multiply keeps
   it < 2n; the symmetric squaring's front-loaded doubles reach < 3n).
   Subtract n while >= n — at most twice — writing the canonical
   residue into dst[0..ke-1].  [dst] may overlap [buf]. *)
let reduce_out t (dst : int array) (buf : int array) (off : int) =
  let k = t.ke and n = t.ne in
  let ge () =
    Array.unsafe_get buf (off + k) <> 0
    || (let rec go i =
          i < 0
          || (let bi = Array.unsafe_get buf (off + i)
              and ni = Array.unsafe_get n i in
              if bi <> ni then bi > ni else go (i - 1))
        in
        go (k - 1))
  in
  while ge () do
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let u = Array.unsafe_get buf (off + i) - Array.unsafe_get n i - !borrow in
      Array.unsafe_set buf (off + i) (u land emask);
      borrow := (u lsr elb) land 1
    done;
    Array.unsafe_set buf (off + k) (Array.unsafe_get buf (off + k) - !borrow)
  done;
  if dst != buf || off <> 0 then Array.blit buf off dst 0 k

(* dst[0..ke-1] <- a * b * Re^{-1} mod n by one fused 2-way CIOS sweep.
   [a] and [b] are ke-digit windows of residues < n; [dst] may alias
   either input (both are consumed before dst is written).  Each pass
   eats b_i and b_{i+1}: quotient digits m0, m1 zero the two bottom
   columns, the inner loop accumulates four products per column
   (< 2^61 with carries) and shifts the window down two digits.
   Previous-digit operands roll through locals to save loads. *)
let cios2_into t (dst : int array) (a : int array) (b : int array) =
  let k = t.ke and nn = t.ne and n' = t.n'e in
  let w = Scratch.get ~slot:Scratch.mont_acc (k + 2) in
  Array.fill w 0 (k + 1) 0;
  let n0 = Array.unsafe_get nn 0 and n1 = Array.unsafe_get nn 1 in
  let i = ref 0 in
  while !i < k do
    let bi = Array.unsafe_get b !i and bi1 = Array.unsafe_get b (!i + 1) in
    let a0 = Array.unsafe_get a 0 in
    let t0 = Array.unsafe_get w 0 + (a0 * bi) in
    let m0 = ((t0 land emask) * n') land emask in
    let c = (t0 + (m0 * n0)) lsr elb in
    let a1 = Array.unsafe_get a 1 in
    let t1 = Array.unsafe_get w 1 + (a1 * bi) + (m0 * n1) + (a0 * bi1) + c in
    let m1 = ((t1 land emask) * n') land emask in
    let carry = ref ((t1 + (m1 * n0)) lsr elb) in
    let aprev = ref a1 and nprev = ref n1 in
    for j = 2 to k - 1 do
      let aj = Array.unsafe_get a j and nj = Array.unsafe_get nn j in
      let u =
        Array.unsafe_get w j
        + (aj * bi) + (!aprev * bi1)
        + (m0 * nj) + (m1 * !nprev)
        + !carry
      in
      Array.unsafe_set w (j - 2) (u land emask);
      carry := u lsr elb;
      aprev := aj;
      nprev := nj
    done;
    let u = Array.unsafe_get w k + (!aprev * bi1) + (m1 * !nprev) + !carry in
    Array.unsafe_set w (k - 2) (u land emask);
    Array.unsafe_set w (k - 1) ((u lsr elb) land emask);
    Array.unsafe_set w k (u lsr (2 * elb));
    i := !i + 2
  done;
  reduce_out t dst w 0

(* dst[0..ke-1] <- a^2 * Re^{-1} mod n: the dedicated squaring sweep.
   Pass pair (i, i+1) adds  a_i^2*B^i + 2*a_i*sum_{j>i} a_j*B^j  (and
   the same one digit up), so each symmetric cross product is computed
   once and doubled: 1.5k^2 limb products against the multiply's 2k^2.
   Column layout per pass: columns below i carry only quotient terms
   (loop A, two products); columns i, i+1, i+2 pick up the diagonal
   a_i^2, the doubled neighbour and a_{i+1}^2 (peeled); columns above
   run the full four-product form (loop B).  The last pass (i = k-2)
   has no loop B and its diagonal tail lands in column k, so it is
   peeled out of the while loop entirely.  [dst] may alias [a]. *)
let sqr2_into t (dst : int array) (a : int array) =
  let k = t.ke and nn = t.ne and n' = t.n'e in
  let w = Scratch.get ~slot:Scratch.mont_acc (k + 2) in
  Array.fill w 0 (k + 1) 0;
  let n0 = Array.unsafe_get nn 0 and n1 = Array.unsafe_get nn 1 in
  let i = ref 0 in
  while !i < k - 2 do
    let i0 = !i in
    let ai = Array.unsafe_get a i0 and ai1 = Array.unsafe_get a (i0 + 1) in
    let ai2 = ai * 2 and ai12 = ai1 * 2 in
    let m0, m1, c0 =
      if i0 = 0 then begin
        (* first pass: w = 0 and the diagonal terms sit in columns 0, 1 *)
        let t0 = ai * ai in
        let m0 = ((t0 land emask) * n') land emask in
        let c = (t0 + (m0 * n0)) lsr elb in
        let t1 = (ai2 * ai1) + (m0 * n1) + c in
        let m1 = ((t1 land emask) * n') land emask in
        (m0, m1, (t1 + (m1 * n0)) lsr elb)
      end
      else begin
        let t0 = Array.unsafe_get w 0 in
        let m0 = ((t0 land emask) * n') land emask in
        let c = (t0 + (m0 * n0)) lsr elb in
        let t1 = Array.unsafe_get w 1 + (m0 * n1) + c in
        let m1 = ((t1 land emask) * n') land emask in
        (m0, m1, (t1 + (m1 * n0)) lsr elb)
      end
    in
    let carry = ref c0 in
    let nprev = ref n1 in
    (* loop A: quotient-only columns below the diagonal *)
    for c = 2 to i0 - 1 do
      let nc = Array.unsafe_get nn c in
      let u = Array.unsafe_get w c + (m0 * nc) + (m1 * !nprev) + !carry in
      Array.unsafe_set w (c - 2) (u land emask);
      carry := u lsr elb;
      nprev := nc
    done;
    (* peel the diagonal columns *)
    if i0 = 0 then begin
      let n2 = Array.unsafe_get nn 2 in
      let u =
        (ai1 * ai1) + (ai2 * Array.unsafe_get a 2) + (m0 * n2) + (m1 * n1)
        + !carry
      in
      Array.unsafe_set w 0 (u land emask);
      carry := u lsr elb;
      nprev := n2
    end
    else begin
      let nc = Array.unsafe_get nn i0 in
      let u =
        Array.unsafe_get w i0 + (ai * ai) + (m0 * nc) + (m1 * !nprev) + !carry
      in
      Array.unsafe_set w (i0 - 2) (u land emask);
      carry := u lsr elb;
      nprev := nc;
      let nc = Array.unsafe_get nn (i0 + 1) in
      let u =
        Array.unsafe_get w (i0 + 1) + (ai2 * ai1) + (m0 * nc) + (m1 * !nprev)
        + !carry
      in
      Array.unsafe_set w (i0 - 1) (u land emask);
      carry := u lsr elb;
      nprev := nc;
      let nc = Array.unsafe_get nn (i0 + 2) in
      let u =
        Array.unsafe_get w (i0 + 2) + (ai1 * ai1)
        + (ai2 * Array.unsafe_get a (i0 + 2))
        + (m0 * nc) + (m1 * !nprev) + !carry
      in
      Array.unsafe_set w i0 (u land emask);
      carry := u lsr elb;
      nprev := nc
    end;
    (* loop B: doubled cross products above the diagonal *)
    let aprev = ref (Array.unsafe_get a (i0 + 2)) in
    for c = i0 + 3 to k - 1 do
      let ac = Array.unsafe_get a c and nc = Array.unsafe_get nn c in
      let u =
        Array.unsafe_get w c + (ai2 * ac) + (ai12 * !aprev)
        + (m0 * nc) + (m1 * !nprev) + !carry
      in
      Array.unsafe_set w (c - 2) (u land emask);
      carry := u lsr elb;
      aprev := ac;
      nprev := nc
    done;
    let u = Array.unsafe_get w k + (ai12 * !aprev) + (m1 * !nprev) + !carry in
    Array.unsafe_set w (k - 2) (u land emask);
    Array.unsafe_set w (k - 1) ((u lsr elb) land emask);
    Array.unsafe_set w k (u lsr (2 * elb));
    i := i0 + 2
  done;
  (* last pass, i0 = k-2: diagonal in columns k-2, k-1 and tail in k *)
  let i0 = k - 2 in
  let ai = Array.unsafe_get a i0 and ai1 = Array.unsafe_get a (i0 + 1) in
  let ai2 = ai * 2 in
  let t0 = Array.unsafe_get w 0 in
  let m0 = ((t0 land emask) * n') land emask in
  let c = (t0 + (m0 * n0)) lsr elb in
  let t1 = Array.unsafe_get w 1 + (m0 * n1) + c in
  let m1 = ((t1 land emask) * n') land emask in
  let carry = ref ((t1 + (m1 * n0)) lsr elb) in
  let nprev = ref n1 in
  for c = 2 to i0 - 1 do
    let nc = Array.unsafe_get nn c in
    let u = Array.unsafe_get w c + (m0 * nc) + (m1 * !nprev) + !carry in
    Array.unsafe_set w (c - 2) (u land emask);
    carry := u lsr elb;
    nprev := nc
  done;
  let nc = Array.unsafe_get nn (k - 2) in
  let u =
    Array.unsafe_get w (k - 2) + (ai * ai) + (m0 * nc) + (m1 * !nprev) + !carry
  in
  Array.unsafe_set w (k - 4) (u land emask);
  carry := u lsr elb;
  nprev := nc;
  let nc = Array.unsafe_get nn (k - 1) in
  let u =
    Array.unsafe_get w (k - 1) + (ai2 * ai1) + (m0 * nc) + (m1 * !nprev)
    + !carry
  in
  Array.unsafe_set w (k - 3) (u land emask);
  carry := u lsr elb;
  nprev := nc;
  let u = Array.unsafe_get w k + (ai1 * ai1) + (m1 * !nprev) + !carry in
  Array.unsafe_set w (k - 2) (u land emask);
  Array.unsafe_set w (k - 1) ((u lsr elb) land emask);
  Array.unsafe_set w k (u lsr (2 * elb));
  reduce_out t dst w 0

let mont_mul_into t (dst : int array) (a : int array) (b : int array) =
  cios2_into t dst a b

let mont_sqr_into t (dst : int array) (a : int array) =
  sqr2_into t dst a

(* Engine REDC of a ke-digit window: w * Re^{-1} mod n as a canonical
   Nat — the single exit conversion of an exponentiation. *)
let redc_e t (w : int array) : Nat.t =
  let k = t.ke and nn = t.ne and n' = t.n'e in
  let p = Scratch.get ~slot:Scratch.mont_prod ((2 * k) + 1) in
  Array.blit w 0 p 0 k;
  Array.fill p k (k + 1) 0;
  for i = 0 to k - 1 do
    let m = (Array.unsafe_get p i * n') land emask in
    let carry =
      ref ((Array.unsafe_get p i + (m * Array.unsafe_get nn 0)) lsr elb)
    in
    for j = 1 to k - 1 do
      let u = Array.unsafe_get p (i + j) + (m * Array.unsafe_get nn j) + !carry in
      Array.unsafe_set p (i + j) (u land emask);
      carry := u lsr elb
    done;
    let idx = ref (i + k) in
    while !carry <> 0 do
      let u = Array.unsafe_get p !idx + !carry in
      Array.unsafe_set p !idx (u land emask);
      carry := u lsr elb;
      incr idx
    done
  done;
  reduce_out t p p k;
  narrow t (Array.sub p k k)

(* ------------------------------------------------------------------ *)
(* Canonical-residue API (ticks once per modular multiplication)       *)
(* ------------------------------------------------------------------ *)

(* Product of two Montgomery-form residues, in Montgomery form. *)
let mont_mul t a b =
  tick t;
  let aw = Scratch.get ~slot:Scratch.mont_op_a t.ke in
  widen_into t aw a;
  let bw = Scratch.get ~slot:Scratch.mont_op_b t.ke in
  widen_into t bw b;
  cios2_into t aw aw bw;
  narrow t aw

(* Squaring through the dedicated symmetric path. *)
let mont_sqr t a =
  tick t;
  let aw = Scratch.get ~slot:Scratch.mont_op_a t.ke in
  widen_into t aw a;
  sqr2_into t aw aw;
  narrow t aw

(* Pre-rewrite multiply-then-REDC engine in 26-bit radix; the old-vs-new
   axis of [bench powm].  Its Montgomery form uses R = B^k, not the
   fused engine's Re, so the two engines compare equal at the Z level
   ([powm_sched], [mulmod]) rather than residue-for-residue. *)
let mont_mul_reference t a b =
  tick t;
  redc t (Nat.mul a b)

let mont_sqr_reference t a =
  tick t;
  redc t (Nat.sqr a)

let to_mont t (z : Z.t) : Nat.t =
  tick t;
  let reduced = Z.to_nat (Z.erem z t.modulus) in
  let aw = Scratch.get ~slot:Scratch.mont_op_a t.ke in
  widen_into t aw reduced;
  cios2_into t aw aw t.r2e;
  narrow t aw

let of_mont t (m : Nat.t) : Z.t =
  let w = Scratch.get ~slot:Scratch.mont_op_a t.ke in
  widen_into t w m;
  Z.of_nat (redc_e t w)

(* Execute a precomputed sliding-window schedule (see {!Wexp}),
   mirroring {!Barrett.powm_sched}.  Everything between the one [erem]
   on entry and the one [redc_e] on exit runs on fixed ke-digit engine
   windows: the odd-powers table is window-width, the accumulator is
   updated in place (the sweeps consume their inputs before writing),
   and each of the {!Wexp.cost}+1 ticked operations allocates nothing. *)
let powm_sched t (base_ : Z.t) (s : Wexp.t) : Z.t =
  if s.Wexp.first = 0 then
    (if Z.equal t.modulus Z.one then Z.zero else Z.one)
  else begin
    let reduced = Z.to_nat (Z.erem base_ t.modulus) in
    let bm = widen t reduced in
    tick t;
    cios2_into t bm bm t.r2e;
    let tbl = Array.make (((s.Wexp.max_odd - 1) / 2) + 1) bm in
    if s.Wexp.max_odd >= 3 then begin
      let b2 = Array.make t.ke 0 in
      tick t;
      sqr2_into t b2 bm;
      for j = 1 to (s.Wexp.max_odd - 1) / 2 do
        let e = Array.make t.ke 0 in
        tick t;
        cios2_into t e tbl.(j - 1) b2;
        tbl.(j) <- e
      done
    end;
    let acc = Array.copy tbl.(s.Wexp.first lsr 1) in
    Array.iter
      (fun op ->
        tick t;
        if op < 0 then sqr2_into t acc acc
        else cios2_into t acc acc tbl.(op lsr 1))
      s.Wexp.ops;
    Z.of_nat (redc_e t acc)
  end

(* Multi-powm: serve k bases — each with its OWN context/modulus — through
   ONE shared schedule, walking the ops tape once per window digit
   instead of once per query.  Each query's Montgomery state (converted
   base, odd-powers table, accumulator) is heap-resident, exactly as in
   [powm_sched]; only the kernel sweeps touch {!Scratch}, and a sweep's
   scratch use is transient within the call, so interleaving the k
   states per tape entry is safe.

   Queries are interleaved in cache-sized GROUPS rather than all at
   once: a query's resident window state is roughly
   (half + 3) * ke * 8 bytes (odd-powers table, accumulator, b^2), and
   interleaving more states than fit L1d evicts each one between its
   own consecutive operations, turning every kernel sweep's operand
   loads into misses — measured as a 5-8% LOSS at k = 16 on 1331-bit
   moduli.  Capping the per-group working set keeps the interleave at
   parity with the sequential ladder for any k.

   Per-context tick counts are identical to k sequential [powm_sched]
   calls ({!Wexp.cost} s + 1 each), so attached counters and the
   predicted=measured bench assertions see no difference; group order
   only permutes work BETWEEN independent queries, never within one.
   Raises [Invalid_argument] on a ts/bases length mismatch. *)
let batch_group_bytes = 24 * 1024

(* Below ~32 engine limbs (~900-bit moduli) one kernel sweep is so
   cheap (~150 ns) that the interleave's per-digit indirections —
   context, accumulator and table loads resolved per tape entry
   instead of hoisted once per query — cost a measured 5-9% of the
   sweep itself, while walking the shared tape once saves only the
   [Array.iter] dispatch.  Such queries run as singleton groups
   through the plain ladder; interleaving engages where sweeps
   dominate. *)
let interleave_min_ke = 32

let powm_sched_batch (ts : t array) (bases : Z.t array) (s : Wexp.t)
    : Z.t array =
  let k = Array.length ts in
  if Array.length bases <> k then
    invalid_arg "Montgomery.powm_sched_batch: ts/bases length mismatch";
  if s.Wexp.first = 0 then
    Array.map
      (fun t -> if Z.equal t.modulus Z.one then Z.zero else Z.one)
      ts
  else begin
    let half = (s.Wexp.max_odd - 1) / 2 in
    let out = Array.make k Z.zero in
    (* One L1-resident group: queries [q0, q0 + gk). *)
    let run_group q0 gk =
      (* Convert each base and seed its odd-powers table (tbl.(0) = base). *)
      let tbls =
        Array.init gk (fun g ->
            let t = ts.(q0 + g) in
            let reduced = Z.to_nat (Z.erem bases.(q0 + g) t.modulus) in
            let bm = widen t reduced in
            tick t;
            cios2_into t bm bm t.r2e;
            Array.make (half + 1) bm)
      in
      if s.Wexp.max_odd >= 3 then begin
        let b2s =
          Array.init gk (fun g ->
              let t = ts.(q0 + g) in
              let b2 = Array.make t.ke 0 in
              tick t;
              sqr2_into t b2 tbls.(g).(0);
              b2)
        in
        for j = 1 to half do
          for g = 0 to gk - 1 do
            let t = ts.(q0 + g) in
            let e = Array.make t.ke 0 in
            tick t;
            cios2_into t e tbls.(g).(j - 1) b2s.(g);
            tbls.(g).(j) <- e
          done
        done
      end;
      let accs =
        Array.init gk (fun g -> Array.copy tbls.(g).(s.Wexp.first lsr 1))
      in
      (* The shared tape, walked once per group: every query in the
         group applies this digit's operation before the tape
         advances. *)
      Array.iter
        (fun op ->
          for g = 0 to gk - 1 do
            let t = ts.(q0 + g) in
            tick t;
            if op < 0 then sqr2_into t accs.(g) accs.(g)
            else cios2_into t accs.(g) accs.(g) tbls.(g).(op lsr 1)
          done)
        s.Wexp.ops;
      for g = 0 to gk - 1 do
        out.(q0 + g) <- Z.of_nat (redc_e ts.(q0 + g) accs.(g))
      done
    in
    let q0 = ref 0 in
    while !q0 < k do
      if ts.(!q0).ke < interleave_min_ke then begin
        (* Singleton group: same ticks, same result, no per-digit
           indirection tax on a sub-microsecond sweep. *)
        out.(!q0) <- powm_sched ts.(!q0) bases.(!q0) s;
        incr q0
      end
      else begin
        (* Grow the group while its summed window state stays in
           budget (always admitting at least one query). *)
        let bytes = ref 0 and gk = ref 0 in
        while
          !q0 + !gk < k
          && ts.(!q0 + !gk).ke >= interleave_min_ke
          && (!gk = 0
             || !bytes + ((half + 3) * ts.(!q0 + !gk).ke * 8)
                <= batch_group_bytes)
        do
          bytes := !bytes + ((half + 3) * ts.(!q0 + !gk).ke * 8);
          incr gk
        done;
        run_group !q0 !gk;
        q0 := !q0 + !gk
      end
    done;
    out
  end

(* The pre-rewrite ladder over [mont_mul_reference]/[mont_sqr_reference]:
   same schedule, same tick count, allocating per operation.  Kept as
   the measured baseline of [bench powm]. *)
let powm_sched_reference t (base_ : Z.t) (s : Wexp.t) : Z.t =
  if s.Wexp.first = 0 then Z.of_nat (redc t t.one_m)
  else begin
    let reduced = Z.to_nat (Z.erem base_ t.modulus) in
    let bm = mont_mul_reference t reduced t.r2 in
    let tbl = Array.make (((s.Wexp.max_odd - 1) / 2) + 1) bm in
    if s.Wexp.max_odd >= 3 then begin
      let b2 = mont_sqr_reference t bm in
      for j = 1 to (s.Wexp.max_odd - 1) / 2 do
        tbl.(j) <- mont_mul_reference t tbl.(j - 1) b2
      done
    end;
    let r = ref tbl.(s.Wexp.first lsr 1) in
    Array.iter
      (fun op ->
        if op < 0 then r := mont_sqr_reference t !r
        else r := mont_mul_reference t !r tbl.(op lsr 1))
      s.Wexp.ops;
    Z.of_nat (redc t !r)
  end

(* Sliding-window modular exponentiation: recode once, then replay. *)
let powm t (base_ : Z.t) (e : Z.t) : Z.t =
  if Z.sign e < 0 then invalid_arg "Montgomery.powm: negative exponent";
  powm_sched t base_ (Wexp.recode (Z.to_nat e))

(* Plain modular multiplication convenience (converts in and out; for a
   single product Barrett is cheaper — this exists for completeness). *)
let mulmod t a b =
  let am = to_mont t a and bm = to_mont t b in
  of_mont t (mont_mul t am bm)
