(* Montgomery modular arithmetic (REDC), an alternative reduction engine
   to {!Barrett} for odd moduli.  Operands live in Montgomery form
   (a * R mod n with R = B^k); one REDC costs one schoolbook product plus
   one k-limb sweep, which beats Barrett's two reciprocal products on
   exponentiation-heavy workloads.  The bench harness compares the two
   (`bench/main.exe ablate-mulengine`), and {!Gr.Server.respond} uses this
   engine by default since honest stage-2 moduli N = Q0*Q1 are odd. *)

let limb_bits = Nat.limb_bits
let base = Nat.base
let mask = Nat.mask

type t = {
  modulus : Z.t;
  n : Nat.t;          (* the modulus, k limbs, odd *)
  k : int;
  n' : int;           (* -n^{-1} mod B *)
  r2 : Nat.t;         (* R^2 mod n, for conversion into Montgomery form *)
  one_m : Nat.t;      (* R mod n = Montgomery form of 1 *)
  mutable tick : int ref option;
    (* optional modular-multiplication counter, mirroring {!Barrett} *)
}

(* Inverse of an odd limb modulo B, by Hensel lifting. *)
let inv_limb (n0 : int) : int =
  let x = ref 1 in
  for _ = 1 to 6 do
    x := (!x * (2 - (n0 * !x land mask))) land mask
  done;
  assert ((n0 * !x) land mask = 1);
  !x

let create (modulus : Z.t) : t =
  if Z.sign modulus <= 0 then invalid_arg "Montgomery.create: modulus <= 0";
  if Z.is_even modulus then invalid_arg "Montgomery.create: modulus must be odd";
  let n = Z.to_nat modulus in
  let k = Array.length n in
  let n' = (base - inv_limb n.(0)) land mask in
  (* R mod n and R^2 mod n by repeated modular doubling instead of a
     2k-limb product + Knuth division: per-query context setup matters
     because the server builds one context per stage-2 query.  Start from
     B^(k-1), which is below the k-limb odd n (n = B^(k-1) would be even);
     limb_bits doublings reach R = B^k mod n, and k*limb_bits more reach
     R^2 = R * 2^(k*limb_bits) mod n. *)
  let buf = Array.make (k + 1) 0 in
  if k = 1 then buf.(0) <- 1 mod n.(0)  (* n = 1: the ring is trivial *)
  else buf.(k - 1) <- 1;
  let ge_n () =
    buf.(k) <> 0
    ||
    let rec go i =
      i < 0 || (if buf.(i) <> n.(i) then buf.(i) > n.(i) else go (i - 1))
    in
    go (k - 1)
  in
  let sub_n () =
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let t = buf.(i) - n.(i) - !borrow in
      buf.(i) <- t land mask;
      borrow := (t lsr limb_bits) land 1
    done;
    buf.(k) <- buf.(k) - !borrow
  in
  let double_mod () =
    let carry = ref 0 in
    for i = 0 to k do
      let t = (buf.(i) lsl 1) lor !carry in
      buf.(i) <- t land mask;
      carry := t lsr limb_bits
    done;
    (* buf < n <= B^k, so the doubled value fits in k+1 limbs *)
    if ge_n () then sub_n ()
  in
  for _ = 1 to limb_bits do double_mod () done;
  let one_m = Nat.normalize (Array.sub buf 0 k) in
  for _ = 1 to k * limb_bits do double_mod () done;
  let r2 = Nat.normalize (Array.sub buf 0 k) in
  { modulus; n; k; n'; r2; one_m; tick = None }

let modulus t = t.modulus

(* Attach or detach a per-multiplication counter, as in {!Barrett}. *)
let set_counter t c = t.tick <- c

let counting t r f =
  let saved = t.tick in
  t.tick <- Some r;
  Fun.protect ~finally:(fun () -> t.tick <- saved) f

(* REDC(T) = T * R^{-1} mod n for T < n * R: zero the low k limbs by
   adding multiples of n, then drop them. *)
let redc t (tt : Nat.t) : Nat.t =
  let buf = Array.make ((2 * t.k) + 1) 0 in
  Array.blit tt 0 buf 0 (Array.length tt);
  for i = 0 to t.k - 1 do
    let m = (Array.unsafe_get buf i * t.n') land mask in
    Nat.addmul_1 buf i t.n m
    (* buf.(i) is now 0 mod B *)
  done;
  let hi = Nat.normalize (Array.sub buf t.k (t.k + 1)) in
  if Nat.compare hi t.n >= 0 then Nat.sub hi t.n else hi

(* Product of two Montgomery-form residues, in Montgomery form. *)
let mont_mul t a b =
  (match t.tick with Some r -> incr r | None -> ());
  redc t (Nat.mul a b)

(* Squaring through the dedicated {!Nat.sqr}. *)
let mont_sqr t a =
  (match t.tick with Some r -> incr r | None -> ());
  redc t (Nat.sqr a)

let to_mont t (z : Z.t) : Nat.t =
  let reduced = Z.to_nat (Z.erem z t.modulus) in
  mont_mul t reduced t.r2

let of_mont t (m : Nat.t) : Z.t = Z.of_nat (redc t m)

(* Execute a precomputed sliding-window schedule (see {!Wexp}),
   mirroring {!Barrett.powm_sched}. *)
let powm_sched t (base_ : Z.t) (s : Wexp.t) : Z.t =
  if s.Wexp.first = 0 then of_mont t t.one_m  (* 1 mod n *)
  else begin
    let bm = to_mont t base_ in
    let tbl = Array.make (((s.Wexp.max_odd - 1) / 2) + 1) bm in
    if s.Wexp.max_odd >= 3 then begin
      let b2 = mont_sqr t bm in
      for j = 1 to (s.Wexp.max_odd - 1) / 2 do
        tbl.(j) <- mont_mul t tbl.(j - 1) b2
      done
    end;
    let r = ref tbl.(s.Wexp.first lsr 1) in
    Array.iter
      (fun op ->
        if op < 0 then r := mont_sqr t !r
        else r := mont_mul t !r tbl.(op lsr 1))
      s.Wexp.ops;
    of_mont t !r
  end

(* Sliding-window modular exponentiation: recode once, then replay. *)
let powm t (base_ : Z.t) (e : Z.t) : Z.t =
  if Z.sign e < 0 then invalid_arg "Montgomery.powm: negative exponent";
  powm_sched t base_ (Wexp.recode (Z.to_nat e))

(* Plain modular multiplication convenience (converts in and out; for a
   single product Barrett is cheaper — this exists for completeness). *)
let mulmod t a b =
  let am = to_mont t a and bm = to_mont t b in
  of_mont t (mont_mul t am bm)
