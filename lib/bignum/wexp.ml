(* Sliding-window exponent recoding, shared by the Barrett and Montgomery
   exponentiation engines.

   A schedule is computed once from the exponent's limbs — a single pass
   builds an explicit bit table, so the scan never pays the per-bit
   div/mod that [Z.testbit] does — and is then executed by an engine as a
   straight-line sequence of modular squarings and multiplications by
   precomputed odd powers of the base.  Because the Gentry–Ramzan server
   raises every query's base to the SAME database exponent e, [Gr.Server]
   recodes e once at creation and replays the schedule for every query. *)

type t = {
  width : int;  (* window width in bits, 1..7 *)
  first : int;  (* odd value of the leading window; 0 iff the exponent is 0 *)
  max_odd : int;  (* largest odd multiplier used: the table holds base^1 .. base^max_odd *)
  ops : int array;  (* -1 = square; odd v >= 1 = multiply by base^v *)
  ebits : int;  (* significant bits of the exponent *)
}

(* Wider windows trade table-build multiplications (2^(w-1) entries)
   against one multiplication saved per ~(w+1) exponent bits; these
   break-evens follow the usual sliding-window analysis (HAC 14.85). *)
let width_for nb =
  if nb <= 8 then 1
  else if nb <= 24 then 2
  else if nb <= 80 then 3
  else if nb <= 240 then 4
  else if nb <= 768 then 5
  else if nb <= 2304 then 6
  else 7

let recode ?width (e : Nat.t) : t =
  let nb = Nat.numbits e in
  if nb = 0 then { width = 1; first = 0; max_odd = 1; ops = [||]; ebits = 0 }
  else begin
    let w =
      match width with
      | None -> width_for nb
      | Some w when 1 <= w && w <= 7 -> w
      | Some _ -> invalid_arg "Wexp.recode: width out of [1, 7]"
    in
    (* Explicit bit table, filled limb by limb. *)
    let bits = Bytes.make nb '\000' in
    Array.iteri
      (fun li limb ->
        let base_idx = li * Nat.limb_bits in
        let top = min Nat.limb_bits (nb - base_idx) in
        for b = 0 to top - 1 do
          if (limb lsr b) land 1 = 1 then
            Bytes.unsafe_set bits (base_idx + b) '\001'
        done)
      e;
    let bit i = Bytes.unsafe_get bits i = '\001' in
    (* Window topped at set bit [i]: up to [w] bits scanning down, with
       trailing zeros stripped so every multiplier stays odd. *)
    let max_odd = ref 1 in
    let take i =
      let l = ref (min w (i + 1)) in
      let v = ref 0 in
      for j = i downto i - !l + 1 do
        v := (!v lsl 1) lor (if bit j then 1 else 0)
      done;
      while !v land 1 = 0 do
        v := !v lsr 1;
        decr l
      done;
      if !v > !max_odd then max_odd := !v;
      (!v, !l)
    in
    (* Worst case (w = 1, all bits set): every remaining bit emits one
       squaring and one multiplication. *)
    let ops = Array.make (2 * nb) 0 in
    let nops = ref 0 in
    let emit v =
      ops.(!nops) <- v;
      incr nops
    in
    let first, l0 = take (nb - 1) in
    let i = ref (nb - 1 - l0) in
    while !i >= 0 do
      if not (bit !i) then begin
        emit (-1);
        decr i
      end
      else begin
        let v, l = take !i in
        for _ = 1 to l do
          emit (-1)
        done;
        emit v;
        i := !i - l
      end
    done;
    { width = w; first; max_odd = !max_odd; ops = Array.sub ops 0 !nops; ebits = nb }
  end

(* Modular multiplications an engine performs replaying this schedule,
   odd-powers table included: when any multiplier above 1 occurs the
   table costs one squaring (base^2) plus (max_odd - 1)/2 products, and
   then every schedule entry is exactly one squaring or multiplication. *)
let cost t =
  if t.first = 0 then 0
  else
    (if t.max_odd >= 3 then 1 + ((t.max_odd - 1) / 2) else 0)
    + Array.length t.ops

(* The exponent this schedule computes, replayed additively over the
   exponent of the accumulator (test oracle for [recode]). *)
let to_exponent t =
  if t.first = 0 then Z.zero
  else
    Array.fold_left
      (fun acc op ->
        if op < 0 then Z.shift_left acc 1 else Z.add acc (Z.of_int op))
      (Z.of_int t.first) t.ops
