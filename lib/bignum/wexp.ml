(* Sliding-window exponent recoding, shared by the Barrett and Montgomery
   exponentiation engines.

   A schedule is computed once from the exponent's limbs — a single pass
   builds an explicit bit table, so the scan never pays the per-bit
   div/mod that [Z.testbit] does — and is then executed by an engine as a
   straight-line sequence of modular squarings and multiplications by
   precomputed odd powers of the base.  Because the Gentry–Ramzan server
   raises every query's base to the SAME database exponent e, [Gr.Server]
   recodes e once at creation and replays the schedule for every query. *)

type t = {
  width : int;  (* window width in bits, 1..7 *)
  first : int;  (* odd value of the leading window; 0 iff the exponent is 0 *)
  max_odd : int;  (* largest odd multiplier used: the table holds base^1 .. base^max_odd *)
  ops : int array;  (* -1 = square; odd v >= 1 = multiply by base^v *)
  ebits : int;  (* significant bits of the exponent *)
}

(* Wider windows trade table-build multiplications (2^(w-1) entries)
   against one multiplication saved per ~(w+1) exponent bits; these
   break-evens follow the usual sliding-window analysis (HAC 14.85). *)
let width_for nb =
  if nb <= 8 then 1
  else if nb <= 24 then 2
  else if nb <= 80 then 3
  else if nb <= 240 then 4
  else if nb <= 768 then 5
  else if nb <= 2304 then 6
  else 7

let recode ?width (e : Nat.t) : t =
  let nb = Nat.numbits e in
  if nb = 0 then { width = 1; first = 0; max_odd = 1; ops = [||]; ebits = 0 }
  else begin
    let w =
      match width with
      | None -> width_for nb
      | Some w when 1 <= w && w <= 7 -> w
      | Some _ -> invalid_arg "Wexp.recode: width out of [1, 7]"
    in
    (* Explicit bit table, filled limb by limb, in a Scratch slot: the
       table only lives for this scan, so recoding allocates nothing
       beyond the returned schedule. *)
    let bits = Scratch.get ~slot:Scratch.wexp_bits nb in
    Array.fill bits 0 nb 0;
    Array.iteri
      (fun li limb ->
        let base_idx = li * Nat.limb_bits in
        let top = min Nat.limb_bits (nb - base_idx) in
        for b = 0 to top - 1 do
          if (limb lsr b) land 1 = 1 then
            Array.unsafe_set bits (base_idx + b) 1
        done)
      e;
    let bit i = Array.unsafe_get bits i = 1 in
    (* Window topped at set bit [i]: up to [w] bits scanning down, with
       trailing zeros stripped so every multiplier stays odd. *)
    let max_odd = ref 1 in
    let take i =
      let l = ref (min w (i + 1)) in
      let v = ref 0 in
      for j = i downto i - !l + 1 do
        v := (!v lsl 1) lor (if bit j then 1 else 0)
      done;
      while !v land 1 = 0 do
        v := !v lsr 1;
        decr l
      done;
      if !v > !max_odd then max_odd := !v;
      (!v, !l)
    in
    (* Worst case (w = 1, all bits set): every remaining bit emits one
       squaring and one multiplication.  Staged in a Scratch slot; only
       the trimmed copy below escapes. *)
    let ops = Scratch.get ~slot:Scratch.wexp_ops (2 * nb) in
    let nops = ref 0 in
    let emit v =
      ops.(!nops) <- v;
      incr nops
    in
    let first, l0 = take (nb - 1) in
    let i = ref (nb - 1 - l0) in
    while !i >= 0 do
      if not (bit !i) then begin
        emit (-1);
        decr i
      end
      else begin
        let v, l = take !i in
        for _ = 1 to l do
          emit (-1)
        done;
        emit v;
        i := !i - l
      end
    done;
    { width = w; first; max_odd = !max_odd; ops = Array.sub ops 0 !nops; ebits = nb }
  end

(* Recode a NEW exponent under an existing schedule's window width: the
   incremental-update path refreshes the cached database schedule after
   a CRT fix-up, and pinning the width keeps the replay-cost profile
   stable across epochs (a near-boundary bit-length change would
   otherwise flip the width and shift predicted costs mid-run). *)
let refresh (old : t) (e : Nat.t) : t = recode ~width:old.width e

(* Modular multiplications an engine performs replaying this schedule,
   odd-powers table included: when any multiplier above 1 occurs the
   table costs one squaring (base^2) plus (max_odd - 1)/2 products, and
   then every schedule entry is exactly one squaring or multiplication. *)
let cost t =
  if t.first = 0 then 0
  else
    (if t.max_odd >= 3 then 1 + ((t.max_odd - 1) / 2) else 0)
    + Array.length t.ops

(* The exponent this schedule computes, replayed additively over the
   exponent of the accumulator (test oracle for [recode]). *)
let to_exponent t =
  if t.first = 0 then Z.zero
  else
    Array.fold_left
      (fun acc op ->
        if op < 0 then Z.shift_left acc 1 else Z.add acc (Z.of_int op))
      (Z.of_int t.first) t.ops

(* Cost of replaying a schedule against an odd-powers table that already
   exists (fixed base): the table build is amortised away and only the
   straight-line ops remain. *)
let replay_cost t = if t.first = 0 then 0 else Array.length t.ops

(* Modular multiplications spent building an odd-powers table
   base^1, base^3, .., base^max_odd: one squaring for base^2 plus one
   product per further odd entry.  Zero when only base^1 is needed. *)
let table_cost ~max_odd = if max_odd >= 3 then 1 + ((max_odd - 1) / 2) else 0

(* ------------------------------------------------------------------ *)
(* Positioned sliding windows, for Straus/Shamir interleaving.         *)
(* ------------------------------------------------------------------ *)

(* Same scan as [recode], but instead of a square/multiply tape it emits
   (pos, v) pairs with v odd, such that e = sum_k v_k * 2^pos_k and the
   windows' bit spans are disjoint.  An interleaved-exponentiation engine
   multiplies by base^v when its shared squaring ladder reaches bit
   [pos]. *)
let windows ?width (e : Nat.t) : (int * int) array =
  let t = recode ?width e in
  if t.first = 0 then [||]
  else begin
    (* Replay the tape: track the current shift of the accumulator's
       exponent; every multiply lands a window whose final position is
       pos = (squarings still to come). *)
    let remaining_shifts = Array.fold_left (fun n op -> if op < 0 then n + 1 else n) 0 t.ops in
    let wins = ref [ (remaining_shifts, t.first) ] in
    let sh = ref remaining_shifts in
    Array.iter
      (fun op ->
        if op < 0 then decr sh else wins := (!sh, op) :: !wins)
      t.ops;
    Array.of_list (List.rev !wins)
  end

(* Largest odd multiplier across a window decomposition (sizes the
   odd-powers table an engine must build). *)
let windows_max_odd ws = Array.fold_left (fun m (_, v) -> max m v) 1 ws

(* Exponent computed by a window decomposition (test oracle). *)
let windows_to_exponent ws =
  Array.fold_left
    (fun acc (pos, v) -> Z.add acc (Z.shift_left (Z.of_int v) pos))
    Z.zero ws

(* Exact group multiplications of the interleaved (Straus/Shamir) ladder
   over two window streams, tables NOT included: the ladder starts at the
   highest window position across both streams (everything above it is
   squarings of 1, skipped), squares once per remaining bit position, and
   pays one multiplication per window beyond the initialising one. *)
let straus_cost ws1 ws2 =
  let n1 = Array.length ws1 and n2 = Array.length ws2 in
  if n1 = 0 && n2 = 0 then 0
  else begin
    (* First multiplication happens at the larger of the two leading
       window *positions* (the low bit of each stream's top window);
       everything above it is a squaring of 1 and is skipped. *)
    let p0 =
      max
        (if n1 = 0 then -1 else fst ws1.(0))
        (if n2 = 0 then -1 else fst ws2.(0))
    in
    p0 + (n1 + n2 - 1)
  end

(* ------------------------------------------------------------------ *)
(* Lim-Lee fixed-base comb geometry.                                   *)
(* ------------------------------------------------------------------ *)

(* A comb splits an exponent of at most [bits] bits into [teeth] rows of
   [cols] columns (row i holds bits i*cols .. i*cols + cols - 1).  The
   engine precomputes T[u] = base^(sum_i u_i * 2^(i*cols)) for every
   tooth pattern u, after which one exponentiation is [cols - 1]
   squarings plus one table multiplication per nonzero column digit. *)
type comb = { teeth : int; cols : int; bits : int }

let make_comb ~bits ~teeth =
  if bits < 1 then invalid_arg "Wexp.make_comb: bits < 1";
  if teeth < 1 || teeth > 16 then invalid_arg "Wexp.make_comb: teeth out of [1, 16]";
  let cols = (bits + teeth - 1) / teeth in
  { teeth; cols; bits = cols * teeth }

(* Tooth count balancing table size (2^h entries, built once per group)
   against per-exponentiation work (~bits/h squarings): h = 8 keeps the
   table at 256 entries while cutting the ladder by 8x, the knee of the
   curve for the 160..256-bit Schnorr orders used here. *)
let teeth_for bits = if bits <= 32 then 2 else if bits <= 96 then 4 else 8

(* Column digits of an exponent under this comb, digit j built from bits
   j, j+cols, j+2*cols, ...  The exponent must fit in [c.bits] bits. *)
let comb_digits (c : comb) (e : Nat.t) : int array =
  let nb = Nat.numbits e in
  if nb > c.bits then invalid_arg "Wexp.comb_digits: exponent too wide for comb";
  let d = Array.make c.cols 0 in
  Array.iteri
    (fun li limb ->
      let base_idx = li * Nat.limb_bits in
      let top = min Nat.limb_bits (nb - base_idx) in
      for b = 0 to top - 1 do
        if (limb lsr b) land 1 = 1 then begin
          let idx = base_idx + b in
          let row = idx / c.cols and col = idx mod c.cols in
          d.(col) <- d.(col) lor (1 lsl row)
        end
      done)
    e;
  d

(* Exponent a digit vector encodes (test oracle for [comb_digits]). *)
let comb_to_exponent (c : comb) (d : int array) =
  let acc = ref Z.zero in
  for j = Array.length d - 1 downto 0 do
    for i = 0 to c.teeth - 1 do
      if (d.(j) lsr i) land 1 = 1 then
        acc := Z.add !acc (Z.shift_left Z.one ((i * c.cols) + j))
    done
  done;
  !acc

(* Exact group multiplications executing a comb exponentiation against a
   prebuilt table: the ladder starts at the highest nonzero column,
   squares once per lower column, and multiplies once per further nonzero
   digit.  Zero for e = 0. *)
let comb_cost (c : comb) (e : Nat.t) =
  let d = comb_digits c e in
  let topj = ref (-1) in
  let nz = ref 0 in
  Array.iteri
    (fun j v ->
      if v <> 0 then begin
        incr nz;
        if j > !topj then topj := j
      end)
    d;
  if !nz = 0 then 0 else !topj + (!nz - 1)

(* One-time cost of building a comb's 2^teeth-entry table for a base:
   (teeth - 1) * cols squarings raise the base to each row's offset, and
   every multi-row pattern costs one product. *)
let comb_table_cost (c : comb) =
  ((c.teeth - 1) * c.cols) + ((1 lsl c.teeth) - 1 - c.teeth)
