(* Barrett modular reduction with a precomputed reciprocal.

   For a fixed modulus m of k limbs, we precompute mu = floor(B^(2k) / m)
   once; reducing any x < B^(2k) then costs two multiplications instead of a
   full division (HAC 14.42).  This context backs all hot modular
   exponentiation in the protocol. *)

type t = {
  modulus : Z.t;
  m_nat : Nat.t;
  k : int;            (* limb count of the modulus *)
  mu : Nat.t;         (* floor(B^(2k) / m) *)
  mutable tick : int ref option;
    (* optional modular-multiplication counter (performance analysis) *)
}

let limb_bits = Nat.limb_bits

let create modulus =
  if Z.sign modulus <= 0 then invalid_arg "Barrett.create: modulus <= 0";
  let m_nat = Z.to_nat modulus in
  let k = (Nat.numbits m_nat + limb_bits - 1) / limb_bits in
  let b2k = Nat.shift_left Nat.one (2 * k * limb_bits) in
  let mu, _ = Nat.divmod b2k m_nat in
  { modulus; m_nat; k; mu; tick = None }

(* Attach or detach a counter incremented once per modular multiplication
   performed through this context (including squarings inside [powm]). *)
let set_counter t c = t.tick <- c

(* Run [f] with [r] counting this context's modular multiplications. *)
let counting t r f =
  let saved = t.tick in
  t.tick <- Some r;
  Fun.protect ~finally:(fun () -> t.tick <- saved) f

let modulus t = t.modulus

(* Keep only the low [limbs] limbs of [a]. *)
let truncate_limbs (a : Nat.t) (limbs : int) : Nat.t =
  if Array.length a <= limbs then a
  else Nat.normalize (Array.sub a 0 limbs)

(* Reduce x < B^(2k) modulo m. *)
let reduce_nat t (x : Nat.t) : Nat.t =
  if Array.length x > 2 * t.k then
    (* Fall back to division for oversized inputs (rare paths only). *)
    snd (Nat.divmod x t.m_nat)
  else begin
    let q1 = Nat.shift_right x ((t.k - 1) * limb_bits) in
    let q3 = Nat.shift_right (Nat.mul q1 t.mu) ((t.k + 1) * limb_bits) in
    let r1 = truncate_limbs x (t.k + 1) in
    (* Only the low k+1 limbs of q3 * m matter. *)
    let r2 = Nat.mul_low q3 t.m_nat (t.k + 1) in
    let r =
      if Nat.compare r1 r2 >= 0 then Nat.sub r1 r2
      else Nat.sub (Nat.add r1 (Nat.shift_left Nat.one ((t.k + 1) * limb_bits))) r2
    in
    (* At most two final corrections (HAC 14.42 note). *)
    let r = if Nat.compare r t.m_nat >= 0 then Nat.sub r t.m_nat else r in
    let r = if Nat.compare r t.m_nat >= 0 then Nat.sub r t.m_nat else r in
    r
  end

(* Windowed reduction: the same HAC 14.42 dataflow as [reduce_nat], but
   over a double-width product that already lives in the [Scratch]
   window [px] (at least 2k limbs, zero-padded above the product).  The
   shifts become window offsets — q1 is px read at limb k-1 — and the
   q1*mu / q3*m products are accumulated in place with
   [Nat.addmul_off]/[Nat.addmul_off_trunc], so the only allocation left
   on a steady-state mulmod/sqrmod is its (<= k+1 limb) result. *)
let reduce_window t (px : int array) : Nat.t =
  let k = t.k in
  let kp1 = k + 1 in
  (* q2 = q1 * mu with q1 = x >> (k-1) limbs: mu has at most k+2 limbs
     (mu <= B^(k+1), with equality when m = B^(k-1)), so q2 < B^(2k+3). *)
  let qlen = (2 * k) + 3 in
  let qbuf = Scratch.get ~slot:Scratch.barrett_qmu qlen in
  Array.fill qbuf 0 qlen 0;
  let mu = t.mu in
  for j = 0 to Array.length mu - 1 do
    Nat.addmul_off qbuf j px (k - 1) kp1 (Array.unsafe_get mu j)
  done;
  (* r2 = low k+1 limbs of q3 * m, with q3 = q2 >> (k+1) limbs read as a
     window of qbuf (q3 < B^(k+1), so k+1 limbs cover it). *)
  let rbuf = Scratch.get ~slot:Scratch.barrett_r (kp1 + 1) in
  Array.fill rbuf 0 (kp1 + 1) 0;
  let m = t.m_nat in
  for j = 0 to k - 1 do
    Nat.addmul_off_trunc rbuf j qbuf kp1 kp1 (Array.unsafe_get m j) ~cut:kp1
  done;
  (* r = (r1 - r2) mod B^(k+1) with r1 = low k+1 limbs of x: dropping
     the final borrow IS the +B^(k+1) wraparound of [reduce_nat]. *)
  let mask = Nat.mask in
  let borrow = ref 0 in
  for i = 0 to k do
    let d = Array.unsafe_get px i - Array.unsafe_get rbuf i - !borrow in
    Array.unsafe_set rbuf i (d land mask);
    borrow := (d lsr 62) land 1
  done;
  (* At most two final corrections (HAC 14.42 note). *)
  let ge_m () =
    rbuf.(k) <> 0
    ||
    let rec cmp i =
      if i < 0 then true
      else
        let ri = Array.unsafe_get rbuf i and mi = Array.unsafe_get m i in
        if ri > mi then true else if ri < mi then false else cmp (i - 1)
    in
    cmp (k - 1)
  in
  let sub_m () =
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let d = Array.unsafe_get rbuf i - Array.unsafe_get m i - !borrow in
      Array.unsafe_set rbuf i (d land mask);
      borrow := (d lsr 62) land 1
    done;
    rbuf.(k) <- rbuf.(k) - !borrow
  in
  if ge_m () then sub_m ();
  if ge_m () then sub_m ();
  let len = ref kp1 in
  while !len > 0 && rbuf.(!len - 1) = 0 do
    decr len
  done;
  Array.sub rbuf 0 !len

let to_nat t z = Z.to_nat (Z.erem z t.modulus)
let of_nat (n : Nat.t) : Z.t = Z.of_nat n

let reduce t z = of_nat (reduce_nat t (to_nat t z))

(* Modular multiplication of already-reduced residues: product into the
   scratch window, windowed reduction.  Oversized operands (not actually
   reduced) take the allocating [reduce_nat] path unchanged. *)
let mulmod_nat t a b =
  (match t.tick with Some r -> incr r | None -> ());
  let la = Array.length a and lb = Array.length b in
  if la > t.k || lb > t.k then reduce_nat t (Nat.mul a b)
  else if la = 0 || lb = 0 then Nat.zero
  else begin
    let plen = (2 * t.k) + 1 in
    let px = Scratch.get ~slot:Scratch.barrett_prod plen in
    Nat.mul_into px a la b lb;
    Array.fill px (la + lb) (plen - la - lb) 0;
    reduce_window t px
  end

let mulmod t a b = of_nat (mulmod_nat t (to_nat t a) (to_nat t b))

(* Modular squaring: the half-product scheme of [Nat.sqr_into] computes
   each symmetric cross product once, about half the limb work of a
   general product. *)
let sqrmod_nat t a =
  (match t.tick with Some r -> incr r | None -> ());
  let la = Array.length a in
  if la > t.k then reduce_nat t (Nat.sqr a)
  else if la = 0 then Nat.zero
  else begin
    let plen = (2 * t.k) + 1 in
    let px = Scratch.get ~slot:Scratch.barrett_prod plen in
    Nat.sqr_into px a la;
    Array.fill px (2 * la) (plen - (2 * la)) 0;
    reduce_window t px
  end

let sqrmod t a =
  let a = to_nat t a in
  of_nat (sqrmod_nat t a)

(* 1 mod m as a residue (0 when m = 1). *)
let one_nat t = if Nat.compare Nat.one t.m_nat < 0 then Nat.one else Nat.zero

(* Odd-powers table base^1, base^3, ..., base^max_odd: tbl.(j) holds
   base^(2j+1).  Built once per (context, base) and shared by every
   schedule replay and interleaved ladder over that base. *)
let odd_powers_nat t (base_ : Nat.t) ~max_odd : Nat.t array =
  if max_odd < 1 || max_odd land 1 = 0 then
    invalid_arg "Barrett.odd_powers_nat: max_odd must be odd and >= 1";
  let b = reduce_nat t base_ in
  let tbl = Array.make (((max_odd - 1) / 2) + 1) b in
  if max_odd >= 3 then begin
    let b2 = sqrmod_nat t b in
    for j = 1 to (max_odd - 1) / 2 do
      tbl.(j) <- mulmod_nat t tbl.(j - 1) b2
    done
  end;
  tbl

(* Replay a precomputed schedule against an already-built odd-powers
   table — the fixed-base fast path: no per-call table cost. *)
let powm_nat_tbl t (tbl : Nat.t array) (s : Wexp.t) : Nat.t =
  if s.Wexp.first = 0 then one_nat t
  else begin
    if (s.Wexp.max_odd - 1) / 2 >= Array.length tbl then
      invalid_arg "Barrett.powm_nat_tbl: odd-powers table too small";
    let r = ref tbl.(s.Wexp.first lsr 1) in
    Array.iter
      (fun op ->
        if op < 0 then r := sqrmod_nat t !r
        else r := mulmod_nat t !r tbl.(op lsr 1))
      s.Wexp.ops;
    !r
  end

(* Execute a precomputed sliding-window schedule (see {!Wexp}): tabulate
   the odd powers base^1, base^3, ..., base^max_odd, then replay the
   schedule as squarings and table multiplications. *)
let powm_nat_sched t (base_ : Nat.t) (s : Wexp.t) : Nat.t =
  if s.Wexp.first = 0 then one_nat t
  else powm_nat_tbl t (odd_powers_nat t base_ ~max_odd:s.Wexp.max_odd) s

(* Straus/Shamir interleaved double exponentiation over prebuilt tables:
   b1^e1 * b2^e2 for the exponents encoded by the two window streams,
   on ONE shared squaring ladder.  The ladder starts at the higher of
   the two leading-window positions and taps each stream's odd-powers
   table as its windows come due; total cost is max(pos1, pos2)
   squarings plus one multiplication per window beyond the first —
   exactly {!Wexp.straus_cost}. *)
let powm2_nat t (tbl1 : Nat.t array) (ws1 : (int * int) array)
    (tbl2 : Nat.t array) (ws2 : (int * int) array) : Nat.t =
  let n1 = Array.length ws1 and n2 = Array.length ws2 in
  if n1 = 0 && n2 = 0 then one_nat t
  else begin
    let p0 =
      max
        (if n1 = 0 then -1 else fst ws1.(0))
        (if n2 = 0 then -1 else fst ws2.(0))
    in
    let acc = ref None in
    let i1 = ref 0 and i2 = ref 0 in
    let tap (tbl : Nat.t array) (ws : (int * int) array) idx i =
      if !idx < Array.length ws && fst ws.(!idx) = i then begin
        let _, v = ws.(!idx) in
        incr idx;
        match !acc with
        | None -> acc := Some tbl.(v lsr 1)
        | Some a -> acc := Some (mulmod_nat t a tbl.(v lsr 1))
      end
    in
    for i = p0 downto 0 do
      (match !acc with
      | None -> ()
      | Some a -> acc := Some (sqrmod_nat t a));
      tap tbl1 ws1 i1 i;
      tap tbl2 ws2 i2 i
    done;
    match !acc with Some a -> a | None -> assert false
  end

(* Convenience wrapper building both tables from scratch (tests,
   callers without cached material). *)
let powm2 t b1 e1 b2 e2 =
  if Z.sign e1 < 0 || Z.sign e2 < 0 then
    invalid_arg "Barrett.powm2: negative exponent";
  let ws1 = Wexp.windows (Z.to_nat e1) in
  let ws2 = Wexp.windows (Z.to_nat e2) in
  let tbl1 = odd_powers_nat t (to_nat t b1) ~max_odd:(Wexp.windows_max_odd ws1) in
  let tbl2 = odd_powers_nat t (to_nat t b2) ~max_odd:(Wexp.windows_max_odd ws2) in
  of_nat (powm2_nat t tbl1 ws1 tbl2 ws2)

(* ------------------------------------------------------------------ *)
(* Lim-Lee fixed-base comb exponentiation.                             *)
(* ------------------------------------------------------------------ *)

(* Precomputed comb table for one (context, base) pair: table.(u) =
   base^(sum_i u_i * 2^(i * cols)) for every tooth pattern u.  Built
   once per Schnorr group; every subsequent base exponentiation costs
   only ~cols squarings plus table multiplications. *)
type fixed_base = { comb : Wexp.comb; table : Nat.t array }

let fixed_base_comb fb = fb.comb

let fixed_base t (base_ : Nat.t) (c : Wexp.comb) : fixed_base =
  let b = reduce_nat t base_ in
  let h = c.Wexp.teeth in
  (* basis.(i) = base^(2^(i * cols)), by repeated squaring. *)
  let basis = Array.make h b in
  for i = 1 to h - 1 do
    let x = ref basis.(i - 1) in
    for _ = 1 to c.Wexp.cols do
      x := sqrmod_nat t !x
    done;
    basis.(i) <- !x
  done;
  let size = 1 lsl h in
  let tbl = Array.make size (one_nat t) in
  let rec log2 v = if v <= 1 then 0 else 1 + log2 (v lsr 1) in
  for u = 1 to size - 1 do
    let lsb = u land -u in
    let rest = u lxor lsb in
    if rest = 0 then tbl.(u) <- basis.(log2 lsb)
    else tbl.(u) <- mulmod_nat t tbl.(rest) basis.(log2 lsb)
  done;
  { comb = c; table = tbl }

(* Comb exponentiation: scan the digit vector from its highest nonzero
   column, squaring once per lower column and multiplying by the table
   entry of each nonzero digit — {!Wexp.comb_cost} multiplications
   exactly. *)
let powm_fixed_base t (fb : fixed_base) (e : Nat.t) : Nat.t =
  let d = Wexp.comb_digits fb.comb e in
  let topj = ref (-1) in
  for j = Array.length d - 1 downto 0 do
    if !topj < 0 && d.(j) <> 0 then topj := j
  done;
  if !topj < 0 then one_nat t
  else begin
    let acc = ref fb.table.(d.(!topj)) in
    for j = !topj - 1 downto 0 do
      acc := sqrmod_nat t !acc;
      if d.(j) <> 0 then acc := mulmod_nat t !acc fb.table.(d.(j))
    done;
    !acc
  end

(* Sliding-window modular exponentiation: recode once, then replay. *)
let powm_nat t (base_ : Nat.t) (e : Z.t) : Nat.t =
  if Z.sign e < 0 then invalid_arg "Barrett.powm: negative exponent";
  powm_nat_sched t base_ (Wexp.recode (Z.to_nat e))

let powm t base_ e = of_nat (powm_nat t (to_nat t base_) e)
let powm_sched t base_ s = of_nat (powm_nat_sched t (to_nat t base_) s)

(* The pre-sliding-window engine — fixed 4-bit windows, a dense 16-entry
   table, per-bit [Z.testbit] (a div/mod each) and squarings through the
   general multiplier.  Kept verbatim as the `bench pir` ablation
   baseline; no production caller remains. *)
let powm_fixed4 t (base_z : Z.t) (e : Z.t) : Z.t =
  if Z.sign e < 0 then invalid_arg "Barrett.powm_fixed4: negative exponent";
  let base_ = to_nat t base_z in
  let nb = Z.numbits e in
  if nb = 0 then
    of_nat (if Nat.compare Nat.one t.m_nat < 0 then Nat.one else Nat.zero)
  else begin
    let window = 4 in
    let tbl = Array.make (1 lsl window) Nat.one in
    tbl.(1) <- reduce_nat t base_;
    for i = 2 to (1 lsl window) - 1 do
      tbl.(i) <- mulmod_nat t tbl.(i - 1) tbl.(1)
    done;
    let nwin = (nb + window - 1) / window in
    let r = ref Nat.one in
    for w = nwin - 1 downto 0 do
      for _ = 1 to window do
        r := mulmod_nat t !r !r
      done;
      let nibble = ref 0 in
      for b = window - 1 downto 0 do
        let bit = (w * window) + b in
        nibble := (!nibble lsl 1) lor (if bit < nb && Z.testbit e bit then 1 else 0)
      done;
      if !nibble <> 0 then r := mulmod_nat t !r tbl.(!nibble)
    done;
    of_nat !r
  end
