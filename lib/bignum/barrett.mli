(** Barrett modular reduction with a precomputed reciprocal.

    Create one context per modulus and reuse it: reduction then costs two
    multiplications instead of a division.  This backs every hot modular
    exponentiation in the protocol. *)

type t

(** [create m] precomputes the Barrett reciprocal for modulus [m > 0]. *)
val create : Z.t -> t

val modulus : t -> Z.t

(** Attach ([Some r]) or detach ([None]) a counter incremented once per
    modular multiplication through this context (squarings included).
    Backs the measured column of the Table II reproduction. *)
val set_counter : t -> int ref option -> unit

(** [counting t r f] runs [f ()] with [r] attached, restoring the previous
    counter afterwards. *)
val counting : t -> int ref -> (unit -> 'a) -> 'a

(** [reduce t x] is [x mod m] (input may be any integer). *)
val reduce : t -> Z.t -> Z.t

(** [mulmod t a b] is [a * b mod m]. *)
val mulmod : t -> Z.t -> Z.t -> Z.t

(** [sqrmod t a] is [a{^2} mod m] through the dedicated {!Nat.sqr}
    (about half the limb products of [mulmod t a a]). *)
val sqrmod : t -> Z.t -> Z.t

(** [powm t b e] is [b{^e} mod m] for [e >= 0]: sliding-window with an
    odd-powers table, width from {!Wexp.width_for}. *)
val powm : t -> Z.t -> Z.t -> Z.t

(** [powm_sched t b s] executes a schedule precomputed by {!Wexp.recode}
    — the per-query fast path when the exponent is fixed. *)
val powm_sched : t -> Z.t -> Wexp.t -> Z.t

(** The pre-sliding-window engine (fixed 4-bit window, per-bit
    [Z.testbit]).  Ablation baseline for [bench pir] only. *)
val powm_fixed4 : t -> Z.t -> Z.t -> Z.t

(** Limb-level variants for callers already holding residues. *)
val reduce_nat : t -> Nat.t -> Nat.t
val mulmod_nat : t -> Nat.t -> Nat.t -> Nat.t
val sqrmod_nat : t -> Nat.t -> Nat.t
val powm_nat : t -> Nat.t -> Z.t -> Nat.t
val powm_nat_sched : t -> Nat.t -> Wexp.t -> Nat.t
