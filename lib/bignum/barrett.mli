(** Barrett modular reduction with a precomputed reciprocal.

    Create one context per modulus and reuse it: reduction then costs two
    multiplications instead of a division.  This backs every hot modular
    exponentiation in the protocol. *)

type t

(** [create m] precomputes the Barrett reciprocal for modulus [m > 0]. *)
val create : Z.t -> t

val modulus : t -> Z.t

(** Attach ([Some r]) or detach ([None]) a counter incremented once per
    modular multiplication through this context (squarings included).
    Backs the measured column of the Table II reproduction. *)
val set_counter : t -> int ref option -> unit

(** [counting t r f] runs [f ()] with [r] attached, restoring the previous
    counter afterwards. *)
val counting : t -> int ref -> (unit -> 'a) -> 'a

(** [reduce t x] is [x mod m] (input may be any integer). *)
val reduce : t -> Z.t -> Z.t

(** [mulmod t a b] is [a * b mod m]. *)
val mulmod : t -> Z.t -> Z.t -> Z.t

(** [sqrmod t a] is [a{^2} mod m] through the dedicated {!Nat.sqr}
    (about half the limb products of [mulmod t a a]). *)
val sqrmod : t -> Z.t -> Z.t

(** [powm t b e] is [b{^e} mod m] for [e >= 0]: sliding-window with an
    odd-powers table, width from {!Wexp.width_for}. *)
val powm : t -> Z.t -> Z.t -> Z.t

(** [powm_sched t b s] executes a schedule precomputed by {!Wexp.recode}
    — the per-query fast path when the exponent is fixed. *)
val powm_sched : t -> Z.t -> Wexp.t -> Z.t

(** The pre-sliding-window engine (fixed 4-bit window, per-bit
    [Z.testbit]).  Ablation baseline for [bench pir] only. *)
val powm_fixed4 : t -> Z.t -> Z.t -> Z.t

(** [powm2 t b1 e1 b2 e2] is [b1{^e1} * b2{^e2} mod m] on one shared
    Straus/Shamir squaring ladder — roughly the squarings of a single
    exponentiation instead of two.  Builds both window tables; use the
    [_nat] form with cached tables on hot paths. *)
val powm2 : t -> Z.t -> Z.t -> Z.t -> Z.t -> Z.t

(** Limb-level variants for callers already holding residues. *)
val reduce_nat : t -> Nat.t -> Nat.t
val mulmod_nat : t -> Nat.t -> Nat.t -> Nat.t
val sqrmod_nat : t -> Nat.t -> Nat.t
val powm_nat : t -> Nat.t -> Z.t -> Nat.t
val powm_nat_sched : t -> Nat.t -> Wexp.t -> Nat.t

(** {2 Precomputed-table fast paths (stage-1 engine)} *)

(** Odd-powers table [base^1, base^3, ..., base^max_odd] ([tbl.(j)] is
    [base^(2j+1)]); [max_odd] must be odd.  Build once per base, replay
    with {!powm_nat_tbl} / {!powm2_nat}. *)
val odd_powers_nat : t -> Nat.t -> max_odd:int -> Nat.t array

(** Replay a {!Wexp.recode} schedule against a prebuilt odd-powers
    table: {!Wexp.replay_cost} multiplications, no table cost.  Raises
    [Invalid_argument] when the table is too small for the schedule. *)
val powm_nat_tbl : t -> Nat.t array -> Wexp.t -> Nat.t

(** [powm2_nat t tbl1 ws1 tbl2 ws2] interleaves two {!Wexp.windows}
    streams over their odd-powers tables on one squaring ladder:
    exactly {!Wexp.straus_cost}[ ws1 ws2] multiplications. *)
val powm2_nat :
  t -> Nat.t array -> (int * int) array -> Nat.t array -> (int * int) array -> Nat.t

(** Lim-Lee fixed-base comb table (see {!Wexp.make_comb}): built once
    per (context, base), it turns every exponentiation of that base
    into ~[cols] squarings plus table lookups. *)
type fixed_base

val fixed_base : t -> Nat.t -> Wexp.comb -> fixed_base
val fixed_base_comb : fixed_base -> Wexp.comb

(** Comb exponentiation against a prebuilt table:
    {!Wexp.comb_cost} multiplications exactly.  Raises
    [Invalid_argument] when the exponent exceeds the comb's bit
    capacity. *)
val powm_fixed_base : t -> fixed_base -> Nat.t -> Nat.t
