(** Montgomery modular arithmetic (REDC) for odd moduli — the alternative
    reduction engine to {!Barrett}, compared by
    [bench/main.exe ablate-mulengine] and used by default for the
    stage-2 server exponentiation (honest moduli N = Q0·Q1 are odd). *)

type t

(** Precompute for an odd positive modulus.  [R mod n] and [R{^2} mod n]
    are derived by repeated modular doubling (no full division), keeping
    per-query context setup cheap. *)
val create : Z.t -> t

val modulus : t -> Z.t

(** Attach ([Some r]) or detach ([None]) a counter incremented once per
    Montgomery multiplication/squaring through this context. *)
val set_counter : t -> int ref option -> unit

(** [counting t r f] runs [f ()] with [r] attached, restoring the
    previous counter afterwards. *)
val counting : t -> int ref -> (unit -> 'a) -> 'a

(** [powm t b e] is [b{^e} mod m] for [e >= 0]: sliding-window REDC with
    an odd-powers table, width from {!Wexp.width_for}. *)
val powm : t -> Z.t -> Z.t -> Z.t

(** [powm_sched t b s] executes a schedule precomputed by {!Wexp.recode}
    — the stage-2 per-query fast path with the database exponent's
    schedule cached server-side. *)
val powm_sched : t -> Z.t -> Wexp.t -> Z.t

(** One-shot modular product (converts in and out of Montgomery form;
    prefer {!Barrett.mulmod} for isolated products). *)
val mulmod : t -> Z.t -> Z.t -> Z.t

(** {1 Montgomery-form internals} (exposed for tests) *)

val to_mont : t -> Z.t -> Nat.t
val of_mont : t -> Nat.t -> Z.t
val mont_mul : t -> Nat.t -> Nat.t -> Nat.t
val mont_sqr : t -> Nat.t -> Nat.t
