(** Montgomery modular arithmetic (REDC) for odd moduli — the alternative
    reduction engine to {!Barrett}, compared by
    [bench/main.exe ablate-mulengine] and used by default for the
    stage-2 server exponentiation (honest moduli N = Q0·Q1 are odd).

    The hot core is a fused word-level CIOS sweep at an internal radix
    of 2{^29} (multiply and REDC reduction in one pass, two operand
    digits at a time), with a dedicated symmetric squaring path used by
    the {!Wexp} window ladders and preallocated {!Scratch} buffers so
    steady-state exponentiation allocates nothing per operation. *)

type t

(** Precompute for an odd positive modulus.  [R mod n] and [R{^2} mod n]
    are derived by repeated modular doubling (no full division), keeping
    per-query context setup cheap. *)
val create : Z.t -> t

val modulus : t -> Z.t

(** Attach ([Some r]) or detach ([None]) a counter incremented once per
    Montgomery multiplication/squaring through this context. *)
val set_counter : t -> int ref option -> unit

(** [counting t r f] runs [f ()] with [r] attached, restoring the
    previous counter afterwards. *)
val counting : t -> int ref -> (unit -> 'a) -> 'a

(** [powm t b e] is [b{^e} mod m] for [e >= 0]: sliding-window REDC with
    an odd-powers table, width from {!Wexp.width_for}. *)
val powm : t -> Z.t -> Z.t -> Z.t

(** [powm_sched t b s] executes a schedule precomputed by {!Wexp.recode}
    — the stage-2 per-query fast path with the database exponent's
    schedule cached server-side. *)
val powm_sched : t -> Z.t -> Wexp.t -> Z.t

(** [powm_sched_batch ts bases s] serves [bases.(q){^e} mod modulus
    ts.(q)] for every [q] through ONE shared schedule [s]: the ops tape
    is walked once per window digit with the k Montgomery states
    interleaved, instead of once per query — the multi-query fast path
    for a server whose cached exponent schedule is common to a whole
    batch of queries with distinct moduli.  Results and per-context tick
    counts are identical to k independent {!powm_sched} calls.  Raises
    [Invalid_argument] when [ts] and [bases] differ in length. *)
val powm_sched_batch : t array -> Z.t array -> Wexp.t -> Z.t array

(** One-shot modular product (converts in and out of Montgomery form;
    prefer {!Barrett.mulmod} for isolated products). *)
val mulmod : t -> Z.t -> Z.t -> Z.t

(** {1 Montgomery-form internals} (exposed for tests) *)

val to_mont : t -> Z.t -> Nat.t
val of_mont : t -> Nat.t -> Z.t
val mont_mul : t -> Nat.t -> Nat.t -> Nat.t
val mont_sqr : t -> Nat.t -> Nat.t

(** {1 Pre-rewrite reference engine}

    The multiply-then-REDC paths the CIOS core replaced, kept verbatim
    in 26-bit {!Nat} arithmetic: crosscheck property tests assert the
    two engines agree on every Z-level result, and [bench powm]
    measures old vs new on the same schedules.  Tick semantics match
    the fused paths exactly.  Note the reference engine's Montgomery
    form uses R = B{^k} of the 26-bit radix while the fused engine uses
    its own R of the 29-bit window, so Montgomery-form residues of the
    two engines differ even though every [powm]/[mulmod] result is
    byte-identical. *)

val mont_mul_reference : t -> Nat.t -> Nat.t -> Nat.t
val mont_sqr_reference : t -> Nat.t -> Nat.t
val powm_sched_reference : t -> Z.t -> Wexp.t -> Z.t

(** {1 Fixed-width internals} (exposed for tests and the kernel bench)

    The fused core trades in fixed-width windows of 29-bit digits (the
    engine's internal radix — wider than {!Nat}'s 26 so a column can
    take four limb products per 63-bit int; see montgomery.ml).  These
    do NOT tick the counter — they are the raw kernels under
    {!mont_mul}/{!mont_sqr}. *)

(** Engine window width: the number of 29-bit digits per residue
    (always even and at least 4; the top digits may be zero padding). *)
val k_limbs : t -> int

(** Repack a canonical residue (< n) into a fresh engine window. *)
val widen : t -> Nat.t -> int array

(** [mont_mul_into t dst a b]: dst <- a*b*R{^-1} mod n by one fused
    2-way CIOS sweep.  [dst] may alias [a] or [b]. *)
val mont_mul_into : t -> int array -> int array -> int array -> unit

(** [mont_sqr_into t dst a]: the dedicated symmetric squaring sweep
    (each cross product computed once and doubled, ~25% fewer limb
    products than a multiply).  [dst] may alias [a]. *)
val mont_sqr_into : t -> int array -> int array -> unit
