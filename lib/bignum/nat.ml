(* Low-level arbitrary-precision natural numbers.

   Representation: little-endian [int array] of limbs in base 2^26, with no
   trailing zero limbs (canonical form).  Zero is the empty array.  Base 2^26
   is chosen so that a limb product plus a limb plus a carry fits comfortably
   in a 63-bit OCaml [int] (52 + 1 bits), which keeps every inner loop free
   of boxed arithmetic. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

(* Canonicalise: drop trailing zero limbs. *)
let normalize (a : t) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let check_canonical (a : t) =
  let n = Array.length a in
  (n = 0 || a.(n - 1) <> 0)
  && Array.for_all (fun l -> 0 <= l && l < base) a

let of_int (x : int) : t =
  if x < 0 then invalid_arg "Nat.of_int: negative";
  if x = 0 then zero
  else if x < base then [| x |]
  else begin
    let rec count acc x = if x = 0 then acc else count (acc + 1) (x lsr limb_bits) in
    let n = count 0 x in
    Array.init n (fun i -> (x lsr (i * limb_bits)) land mask)
  end

let to_int_opt (a : t) : int option =
  (* Largest representable OCaml int spans three 26-bit limbs (62 bits). *)
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl limb_bits))
  | 3 ->
    if a.(2) < 1 lsl (Sys.int_size - 1 - (2 * limb_bits)) then
      Some (a.(0) lor (a.(1) lsl limb_bits) lor (a.(2) lsl (2 * limb_bits)))
    else None
  | _ -> None

let compare (a : t) (b : t) : int =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

(* Number of significant bits; 0 for zero. *)
let numbits (a : t) : int =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w x = if x = 0 then w else width (w + 1) (x lsr 1) in
    ((n - 1) * limb_bits) + width 0 top
  end

let testbit (a : t) (i : int) : bool =
  if i < 0 then invalid_arg "Nat.testbit: negative index";
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let a, b, la, lb = if la >= lb then a, b, la, lb else b, a, lb, la in
  let r = Array.make (la + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lb - 1 do
    let t = a.(i) + b.(i) + !carry in
    r.(i) <- t land mask;
    carry := t lsr limb_bits
  done;
  for i = lb to la - 1 do
    let t = a.(i) + !carry in
    r.(i) <- t land mask;
    carry := t lsr limb_bits
  done;
  r.(la) <- !carry;
  normalize r

(* [sub a b] requires a >= b. *)
let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Nat.sub: underflow";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to lb - 1 do
    let t = a.(i) - b.(i) - !borrow in
    r.(i) <- t land mask;
    borrow := (t lsr limb_bits) land 1 (* t in (-base, base): borrow iff t < 0 *)
  done;
  for i = lb to la - 1 do
    let t = a.(i) - !borrow in
    r.(i) <- t land mask;
    borrow := (t lsr limb_bits) land 1
  done;
  if !borrow <> 0 then invalid_arg "Nat.sub: underflow";
  normalize r

let add_int (a : t) (x : int) : t = add a (of_int x)
let sub_int (a : t) (x : int) : t = sub a (of_int x)

(* r.(off ..) += a * m  for a single limb m; returns nothing, mutates r.
   r must be long enough to absorb the final carry.  Inner loop of every
   multiplication: unsafe accesses are justified by the explicit length
   bounds here and in the callers. *)
let addmul_1 (r : int array) (off : int) (a : t) (m : int) =
  if m <> 0 then begin
    let carry = ref 0 in
    let la = Array.length a in
    for i = 0 to la - 1 do
      let t =
        Array.unsafe_get r (off + i)
        + (Array.unsafe_get a i * m)
        + !carry
      in
      Array.unsafe_set r (off + i) (t land mask);
      carry := t lsr limb_bits
    done;
    let i = ref (off + la) in
    while !carry <> 0 do
      let t = r.(!i) + !carry in
      r.(!i) <- t land mask;
      carry := t lsr limb_bits;
      incr i
    done
  end

(* Like [addmul_1] but never writes at or beyond limb index [cut] of [r]
   (absolute index, not relative to [off]): the low-product building
   block for Barrett reduction. *)
let addmul_1_trunc (r : int array) (off : int) (a : t) (m : int) ~(cut : int) =
  if m <> 0 && off < cut then begin
    let carry = ref 0 in
    let la = min (Array.length a) (cut - off) in
    for i = 0 to la - 1 do
      let t =
        Array.unsafe_get r (off + i)
        + (Array.unsafe_get a i * m)
        + !carry
      in
      Array.unsafe_set r (off + i) (t land mask);
      carry := t lsr limb_bits
    done;
    let i = ref (off + la) in
    while !carry <> 0 && !i < cut do
      let t = r.(!i) + !carry in
      r.(!i) <- t land mask;
      carry := t lsr limb_bits;
      incr i
    done
  end

(* Offset variant of [addmul_1]: r.(roff ..) += a[aoff .. aoff+alen-1] * m.
   Lets the engines multiply a *window* of a larger buffer (Barrett's q1
   and q3 are limb-aligned views of intermediate products) without
   slicing it into a fresh array first. *)
let addmul_off (r : int array) (roff : int) (a : int array) (aoff : int)
    (alen : int) (m : int) =
  if m <> 0 then begin
    let carry = ref 0 in
    for i = 0 to alen - 1 do
      let t =
        Array.unsafe_get r (roff + i)
        + (Array.unsafe_get a (aoff + i) * m)
        + !carry
      in
      Array.unsafe_set r (roff + i) (t land mask);
      carry := t lsr limb_bits
    done;
    let i = ref (roff + alen) in
    while !carry <> 0 do
      let t = r.(!i) + !carry in
      r.(!i) <- t land mask;
      carry := t lsr limb_bits;
      incr i
    done
  end

(* Offset + truncated: never writes at or beyond limb [cut] of [r]. *)
let addmul_off_trunc (r : int array) (roff : int) (a : int array) (aoff : int)
    (alen : int) (m : int) ~(cut : int) =
  if m <> 0 && roff < cut then begin
    let carry = ref 0 in
    let alen = min alen (cut - roff) in
    for i = 0 to alen - 1 do
      let t =
        Array.unsafe_get r (roff + i)
        + (Array.unsafe_get a (aoff + i) * m)
        + !carry
      in
      Array.unsafe_set r (roff + i) (t land mask);
      carry := t lsr limb_bits
    done;
    let i = ref (roff + alen) in
    while !carry <> 0 && !i < cut do
      let t = r.(!i) + !carry in
      r.(!i) <- t land mask;
      carry := t lsr limb_bits;
      incr i
    done
  end

(* [mul_into dst a la b lb] overwrites dst[0 .. la+lb-1] with the
   product a[0..la-1] * b[0..lb-1].  Inputs are fixed-width windows —
   trailing zero limbs are fine, canonical form is NOT required — which
   is what the scratch-buffer engines trade in.  [dst] must not alias
   [a] or [b] and needs length >= la + lb. *)
let mul_into (dst : int array) (a : int array) (la : int) (b : int array)
    (lb : int) =
  Array.fill dst 0 (la + lb) 0;
  for j = 0 to lb - 1 do
    addmul_off dst j a 0 la (Array.unsafe_get b j)
  done

(* [sqr_into dst a n] overwrites dst[0 .. 2n-1] with the square of
   a[0..n-1]: the same half-product scheme as [sqr_schoolbook] (each
   symmetric cross product once, doubled in place, diagonal folded in
   last), but into a caller-owned buffer.  Same contract as
   [mul_into]. *)
let sqr_into (dst : int array) (a : int array) (n : int) =
  Array.fill dst 0 (2 * n) 0;
  for i = 0 to n - 2 do
    let m = Array.unsafe_get a i in
    if m <> 0 then begin
      let carry = ref 0 in
      for j = i + 1 to n - 1 do
        let t =
          Array.unsafe_get dst (i + j)
          + (Array.unsafe_get a j * m)
          + !carry
        in
        Array.unsafe_set dst (i + j) (t land mask);
        carry := t lsr limb_bits
      done;
      let k = ref (i + n) in
      while !carry <> 0 do
        let t = dst.(!k) + !carry in
        dst.(!k) <- t land mask;
        carry := t lsr limb_bits;
        incr k
      done
    end
  done;
  let carry = ref 0 in
  for i = 0 to (2 * n) - 1 do
    let t = (Array.unsafe_get dst i lsl 1) lor !carry in
    Array.unsafe_set dst i (t land mask);
    carry := t lsr limb_bits
  done;
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a i in
    let sq = ai * ai in
    let t0 = Array.unsafe_get dst (2 * i) + (sq land mask) + !carry in
    Array.unsafe_set dst (2 * i) (t0 land mask);
    let t1 =
      Array.unsafe_get dst ((2 * i) + 1)
      + (sq lsr limb_bits)
      + (t0 lsr limb_bits)
    in
    Array.unsafe_set dst ((2 * i) + 1) (t1 land mask);
    carry := t1 lsr limb_bits
  done

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for j = 0 to lb - 1 do
      addmul_1 r j a b.(j)
    done;
    normalize r
  end

(* [mul_low a b limbs] = (a * b) mod B^limbs: computes only the columns
   below [limbs].  Used by Barrett reduction, where the high half of one
   product is discarded anyway. *)
let mul_low (a : t) (b : t) (limbs : int) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 || limbs <= 0 then zero
  else begin
    let r = Array.make limbs 0 in
    let jmax = min (lb - 1) (limbs - 1) in
    for j = 0 to jmax do
      addmul_1_trunc r j a b.(j) ~cut:limbs
    done;
    normalize r
  end

let shift_left (a : t) (bits : int) : t =
  if bits < 0 then invalid_arg "Nat.shift_left: negative";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let t = a.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (t land mask);
      r.(i + limbs + 1) <- t lsr limb_bits
    done;
    normalize r
  end

let shift_right (a : t) (bits : int) : t =
  if bits < 0 then invalid_arg "Nat.shift_right: negative";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi =
          if off = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (limb_bits - off)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Division by a single limb: returns (quotient, remainder). *)
let divmod_1 (a : t) (d : int) : t * int =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_1: divisor out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  normalize q, !r

let karatsuba_threshold = 32
let toom3_threshold = 128

(* Split [a] at limb [k]: (low, high) with a = low + high * base^k. *)
let split (a : t) (k : int) : t * t =
  let la = Array.length a in
  if la <= k then a, zero
  else normalize (Array.sub a 0 k), Array.sub a k (la - k)

(* Three-way split: a = a0 + a1 * base^k + a2 * base^2k. *)
let split3 (a : t) (k : int) : t * t * t =
  let la = Array.length a in
  if la <= k then a, zero, zero
  else if la <= 2 * k then
    normalize (Array.sub a 0 k), Array.sub a k (la - k), zero
  else
    ( normalize (Array.sub a 0 k),
      normalize (Array.sub a k k),
      Array.sub a (2 * k) (la - (2 * k)) )

let shift_limbs (a : t) (k : int) : t =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

(* Halve an even value (exact). *)
let half (a : t) : t =
  let la = Array.length a in
  if la = 0 then zero
  else begin
    let r = Array.make la 0 in
    for i = 0 to la - 2 do
      r.(i) <- (a.(i) lsr 1) lor ((a.(i + 1) land 1) lsl (limb_bits - 1))
    done;
    r.(la - 1) <- a.(la - 1) lsr 1;
    normalize r
  end

(* Toom-Cook 3-way interpolation, shared by [mul] and [sqr].  The point
   values are P(0), P(1), P(-1), P(2), P(inf) of the degree-4 product
   polynomial P = c0 + c1 X + .. + c4 X^4 (X = base^k); [vm1] is passed
   as magnitude + sign since (a0 - a1 + a2) can be negative.  Every
   coefficient of P is non-negative, so each subtraction below is exact
   over naturals and the divisions by 2 and 3 are exact:

     t1 = (v1 + vm1)/2 = c0 + c2 + c4        c2 = t1 - c0 - c4
     t2 = (v1 - vm1)/2 = c1 + c3
     t3 = (v2 - c0 - 4 c2 - 16 c4)/2 = c1 + 4 c3
     c3 = (t3 - t2)/3                        c1 = t2 - c3 *)
let toom3_interp ~(v0 : t) ~(v1 : t) ~(vm1 : t) ~(vm1_neg : bool) ~(v2 : t)
    ~(vinf : t) ~(k : int) : t =
  let t1, t2 =
    if vm1_neg then half (sub v1 vm1), half (add v1 vm1)
    else half (add v1 vm1), half (sub v1 vm1)
  in
  let c2 = sub (sub t1 v0) vinf in
  let t3 =
    half (sub v2 (add v0 (add (shift_left c2 2) (shift_left vinf 4))))
  in
  let c3, r3 = divmod_1 (sub t3 t2) 3 in
  assert (r3 = 0);
  let c1 = sub t2 c3 in
  add
    (add v0 (shift_limbs c1 k))
    (add (shift_limbs c2 (2 * k))
       (add (shift_limbs c3 (3 * k)) (shift_limbs vinf (4 * k))))

(* Multiplication ladder: schoolbook below [karatsuba_threshold],
   Karatsuba 2-way up to [toom3_threshold], Toom-Cook 3-way above —
   5 recursive third-size products instead of Karatsuba's 9 over two
   levels, which wins on the multi-thousand-bit operands of the CRT
   product tree and the phi-hiding moduli. *)
let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
  else if la < toom3_threshold || lb < toom3_threshold then begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split a k and b0, b1 = split b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (sub (mul (add a0 a1) (add b0 b1)) z0) z2 in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end
  else begin
    let k = (max la lb + 2) / 3 in
    let a0, a1, a2 = split3 a k and b0, b1, b2 = split3 b k in
    let v0 = mul a0 b0 in
    let vinf = mul a2 b2 in
    let v1 = mul (add (add a0 a1) a2) (add (add b0 b1) b2) in
    (* a(-1) = a0 - a1 + a2 as sign + magnitude, likewise b(-1). *)
    let pa = add a0 a2 and pb = add b0 b2 in
    let na, ma =
      if compare pa a1 >= 0 then false, sub pa a1 else true, sub a1 pa
    in
    let nb, mb =
      if compare pb b1 >= 0 then false, sub pb b1 else true, sub b1 pb
    in
    let vm1 = mul ma mb in
    let v2 =
      mul
        (add a0 (shift_left (add a1 (shift_left a2 1)) 1))
        (add b0 (shift_left (add b1 (shift_left b2 1)) 1))
    in
    toom3_interp ~v0 ~v1 ~vm1 ~vm1_neg:(na <> nb) ~v2 ~vinf ~k
  end

(* Schoolbook squaring.  The cross products a_i * a_j (i < j) are each
   computed once and doubled afterwards, so squaring costs about half the
   limb products of [mul_schoolbook a a]; the diagonal a_i^2 terms are
   folded in last. *)
let sqr_schoolbook (a : t) : t =
  let n = Array.length a in
  if n = 0 then zero
  else begin
    let r = Array.make (2 * n) 0 in
    (* Off-diagonal products a_i * a_j (j > i) accumulated at column i+j. *)
    for i = 0 to n - 2 do
      let m = Array.unsafe_get a i in
      if m <> 0 then begin
        let carry = ref 0 in
        for j = i + 1 to n - 1 do
          let t =
            Array.unsafe_get r (i + j)
            + (Array.unsafe_get a j * m)
            + !carry
          in
          Array.unsafe_set r (i + j) (t land mask);
          carry := t lsr limb_bits
        done;
        let k = ref (i + n) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land mask;
          carry := t lsr limb_bits;
          incr k
        done
      end
    done;
    (* Double the cross terms in place (sum < base^2n, carry dies inside). *)
    let carry = ref 0 in
    for i = 0 to (2 * n) - 1 do
      let t = (Array.unsafe_get r i lsl 1) lor !carry in
      Array.unsafe_set r i (t land mask);
      carry := t lsr limb_bits
    done;
    (* Add the diagonal: a_i^2 spans columns 2i and 2i+1. *)
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let ai = Array.unsafe_get a i in
      let sq = ai * ai in
      let t0 = Array.unsafe_get r (2 * i) + (sq land mask) + !carry in
      Array.unsafe_set r (2 * i) (t0 land mask);
      let t1 =
        Array.unsafe_get r ((2 * i) + 1) + (sq lsr limb_bits) + (t0 lsr limb_bits)
      in
      Array.unsafe_set r ((2 * i) + 1) (t1 land mask);
      carry := t1 lsr limb_bits
    done;
    normalize r
  end

(* Squaring ladder, mirroring [mul]: Karatsuba squaring — (a0 + a1 B^k)^2
   needs three half-size squarings, since the middle term
   (a0 + a1)^2 - a0^2 - a1^2 = 2 a0 a1 — and Toom-3 squaring above
   [toom3_threshold].  In the squaring case a(-1)^2 is non-negative
   whatever the sign of a0 - a1 + a2, so no signed bookkeeping at all. *)
let rec sqr (a : t) : t =
  let la = Array.length a in
  if la < karatsuba_threshold then sqr_schoolbook a
  else if la < toom3_threshold then begin
    let k = (la + 1) / 2 in
    let a0, a1 = split a k in
    let z0 = sqr a0 in
    let z2 = sqr a1 in
    let z1 = sub (sqr (add a0 a1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end
  else begin
    let k = (la + 2) / 3 in
    let a0, a1, a2 = split3 a k in
    let v0 = sqr a0 in
    let vinf = sqr a2 in
    let v1 = sqr (add (add a0 a1) a2) in
    let pa = add a0 a2 in
    let ma = if compare pa a1 >= 0 then sub pa a1 else sub a1 pa in
    let vm1 = sqr ma in
    let v2 = sqr (add a0 (shift_left (add a1 (shift_left a2 1)) 1)) in
    toom3_interp ~v0 ~v1 ~vm1 ~vm1_neg:false ~v2 ~vinf ~k
  end

let mul_int (a : t) (m : int) : t =
  if m < 0 then invalid_arg "Nat.mul_int: negative"
  else if m = 0 || is_zero a then zero
  else if m < base then begin
    let r = Array.make (Array.length a + 1) 0 in
    addmul_1 r 0 a m;
    normalize r
  end
  else mul a (of_int m)

(* Knuth Algorithm D (TAOCP 4.3.1) for multi-limb divisors.
   Requires Array.length d >= 2 and a >= d not required (handled by caller). *)
let divmod_knuth (a : t) (d : t) : t * t =
  let n = Array.length d in
  (* Normalise so the top divisor limb has its high bit set. *)
  let top = d.(n - 1) in
  let rec width w x = if x = 0 then w else width (w + 1) (x lsr 1) in
  let shift = limb_bits - width 0 top in
  let u0 = shift_left a shift and v = shift_left d shift in
  let v = if Array.length v = n then v else (assert false) in
  let m = Array.length u0 - n in
  if m < 0 then zero, a
  else begin
    (* Work buffer with one extra high limb. *)
    let u = Array.make (Array.length u0 + 1) 0 in
    Array.blit u0 0 u 0 (Array.length u0);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) and vsnd = v.(n - 2) in
    for j = m downto 0 do
      let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      let adjust = ref true in
      while !adjust do
        if !qhat >= base
           || !qhat * vsnd > (!rhat lsl limb_bits) lor u.(j + n - 2)
        then begin
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then adjust := false
        end
        else adjust := false
      done;
      (* Multiply-subtract u[j..j+n] -= qhat * v. *)
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let t = u.(i + j) - (!qhat * v.(i)) - !borrow in
        u.(i + j) <- t land mask;
        borrow := - (t asr limb_bits)
      done;
      let t = u.(j + n) - !borrow in
      if t < 0 then begin
        (* qhat was one too large: add v back. *)
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !carry in
          u.(i + j) <- s land mask;
          carry := s lsr limb_bits
        done;
        u.(j + n) <- (t + !carry) land mask
      end
      else u.(j + n) <- t;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    normalize q, shift_right r shift
  end

let divmod (a : t) (d : t) : t * t =
  match Array.length d with
  | 0 -> raise Division_by_zero
  | 1 ->
    let q, r = divmod_1 a d.(0) in
    q, of_int r
  | _ -> if compare a d < 0 then zero, a else divmod_knuth a d

(* Big-endian byte conversions. *)
let of_bytes_be (s : string) : t =
  let nbytes = String.length s in
  let nbits = nbytes * 8 in
  let nlimbs = (nbits + limb_bits - 1) / limb_bits in
  let r = Array.make (max nlimbs 1) 0 in
  for k = 0 to nbytes - 1 do
    (* byte k from the end contributes bits [8k, 8k+8). *)
    let byte = Char.code s.[nbytes - 1 - k] in
    let bit = 8 * k in
    let limb = bit / limb_bits and off = bit mod limb_bits in
    r.(limb) <- r.(limb) lor ((byte lsl off) land mask);
    if off > limb_bits - 8 && limb + 1 < Array.length r then
      r.(limb + 1) <- r.(limb + 1) lor (byte lsr (limb_bits - off))
  done;
  normalize r

let to_bytes_be (a : t) : string =
  if is_zero a then ""
  else begin
    let nbytes = (numbits a + 7) / 8 in
    let b = Bytes.create nbytes in
    for k = 0 to nbytes - 1 do
      let bit = 8 * k in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      let v = a.(limb) lsr off in
      let v =
        if off > limb_bits - 8 && limb + 1 < Array.length a then
          v lor (a.(limb + 1) lsl (limb_bits - off))
        else v
      in
      Bytes.set b (nbytes - 1 - k) (Char.chr (v land 0xff))
    done;
    Bytes.unsafe_to_string b
  end

(* Decimal conversion in chunks of 10^7 (fits in one limb arithmetic). *)
let chunk = 10_000_000
let chunk_digits = 7

let to_string (a : t) : string =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go a acc =
      if is_zero a then acc
      else begin
        let q, r = divmod_1 a chunk in
        go q (r :: acc)
      end
    in
    match go a [] with
    | [] -> "0"
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun r -> Buffer.add_string buf (Printf.sprintf "%07d" r)) rest;
      Buffer.contents buf
  end

let of_string (s : string) : t =
  if s = "" then invalid_arg "Nat.of_string: empty";
  let acc = ref zero in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let len = min chunk_digits (n - !i) in
    let part = String.sub s !i len in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Nat.of_string: bad digit") part;
    let scale =
      let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
      pow 10 len
    in
    acc := add_int (mul_int !acc scale) (int_of_string part);
    i := !i + len
  done;
  !acc

let one = of_int 1
let two = of_int 2
