(** Per-domain reusable limb workspaces for the bignum engines.

    One global [Domain.DLS] key holds a small pool of growable
    [int array] slots per domain, so the steady-state hot paths
    (CIOS Montgomery, Barrett reduction, Wexp recoding) run without
    per-operation allocation while staying safe under the Domains
    worker pool.

    Discipline: a borrow is valid until the next {!get} of the same
    slot on the same domain; distinct simultaneously-live buffers use
    distinct slot ids (registered in the implementation); contents are
    stale on borrow and must be overwritten by the caller. *)

val slot_count : int

(** Slot ids.  Assigned centrally so overlap is impossible by
    construction; see the implementation for the coexistence notes. *)

val mont_acc : int
val mont_prod : int
val mont_op_a : int
val mont_op_b : int
val barrett_prod : int
val barrett_qmu : int
val barrett_r : int
val wexp_bits : int
val wexp_ops : int

(** [get ~slot len] borrows this domain's buffer for [slot], grown to at
    least [len] limbs.  Stale contents; valid until the next [get] of
    the same slot on this domain. *)
val get : slot:int -> int -> int array
