(** Sliding-window exponent recoding (HAC 14.85), shared by the
    {!Barrett} and {!Montgomery} exponentiation engines.

    [recode] turns an exponent into a straight-line schedule of modular
    squarings and multiplications by odd powers of the base.  Recoding is
    separated from execution so a fixed exponent — the Gentry–Ramzan
    database integer [e], identical across every stage-2 query — is
    recoded once and replayed per query. *)

type t = {
  width : int;  (** window width in bits, 1..7 *)
  first : int;  (** odd leading-window value; 0 iff the exponent is 0 *)
  max_odd : int;  (** largest odd multiplier (sizes the powers table) *)
  ops : int array;  (** -1 = square; odd [v >= 1] = multiply by [base^v] *)
  ebits : int;  (** significant bits of the exponent *)
}

(** Cost-optimal window width for an exponent of [nb] bits (1..7). *)
val width_for : int -> int

(** Recode an exponent given as {!Nat.t} limbs.  The schedule is scanned
    from an explicit bit table built in one pass over the limbs — no
    per-bit division.  [width] forces a window width (testing/ablation);
    default is {!width_for} of the exponent's bit length. *)
val recode : ?width:int -> Nat.t -> t

(** [refresh old e] recodes a new exponent with [old]'s window width —
    the schedule-refresh path after an incremental database update,
    keeping the replay-cost profile stable across epochs. *)
val refresh : t -> Nat.t -> t

(** Exact modular multiplications an engine performs executing the
    schedule, including building the odd-powers table (the updated
    Table II closed form asserts against this). *)
val cost : t -> int

(** The exponent the schedule computes — replay oracle for tests. *)
val to_exponent : t -> Z.t

(** Multiplications to replay a schedule when the odd-powers table
    already exists (fixed base): just the straight-line ops. *)
val replay_cost : t -> int

(** Multiplications to build an odd-powers table base^1, base^3, ...,
    base^[max_odd]: 0 when [max_odd = 1], else [1 + (max_odd - 1) / 2]. *)
val table_cost : max_odd:int -> int

(** {2 Positioned windows (Straus/Shamir interleaving)} *)

(** Decompose an exponent into disjoint sliding windows [(pos, v)] with
    [v] odd and [e = sum v * 2^pos], ordered by descending [pos].  An
    interleaved multi-exponentiation engine multiplies by [base^v] when
    its shared squaring ladder reaches bit [pos]. *)
val windows : ?width:int -> Nat.t -> (int * int) array

(** Largest odd multiplier in a window decomposition. *)
val windows_max_odd : (int * int) array -> int

(** Exponent a window decomposition encodes — test oracle. *)
val windows_to_exponent : (int * int) array -> Z.t

(** Exact ladder multiplications of a two-stream interleaved
    exponentiation (tables excluded): shared squarings from the higher
    leading-window position down to bit 0, plus one multiplication per
    window beyond the first. *)
val straus_cost : (int * int) array -> (int * int) array -> int

(** {2 Lim-Lee fixed-base combs} *)

(** Comb geometry: [teeth] rows of [cols] columns covering exponents of
    up to [bits = teeth * cols] bits. *)
type comb = private { teeth : int; cols : int; bits : int }

(** [make_comb ~bits ~teeth] sizes a comb for exponents of at most
    [bits] bits.  Raises [Invalid_argument] unless [bits >= 1] and
    [1 <= teeth <= 16]. *)
val make_comb : bits:int -> teeth:int -> comb

(** Default tooth count for a [bits]-bit exponent range (2^teeth table
    entries vs ~bits/teeth squarings per exponentiation). *)
val teeth_for : int -> int

(** Column digits of an exponent under a comb, digit [j] packing bits
    [j, j + cols, j + 2 cols, ...].  Raises [Invalid_argument] when the
    exponent exceeds the comb's [bits]. *)
val comb_digits : comb -> Nat.t -> int array

(** Exponent a digit vector encodes — test oracle for [comb_digits]. *)
val comb_to_exponent : comb -> int array -> Z.t

(** Exact multiplications executing a comb exponentiation against a
    prebuilt table: highest nonzero column index squarings plus one
    multiplication per further nonzero digit; 0 for [e = 0]. *)
val comb_cost : comb -> Nat.t -> int

(** One-time multiplications to build a comb table for a base:
    [(teeth - 1) * cols] squarings plus [2^teeth - 1 - teeth]
    products. *)
val comb_table_cost : comb -> int
