(** Sliding-window exponent recoding (HAC 14.85), shared by the
    {!Barrett} and {!Montgomery} exponentiation engines.

    [recode] turns an exponent into a straight-line schedule of modular
    squarings and multiplications by odd powers of the base.  Recoding is
    separated from execution so a fixed exponent — the Gentry–Ramzan
    database integer [e], identical across every stage-2 query — is
    recoded once and replayed per query. *)

type t = {
  width : int;  (** window width in bits, 1..7 *)
  first : int;  (** odd leading-window value; 0 iff the exponent is 0 *)
  max_odd : int;  (** largest odd multiplier (sizes the powers table) *)
  ops : int array;  (** -1 = square; odd [v >= 1] = multiply by [base^v] *)
  ebits : int;  (** significant bits of the exponent *)
}

(** Cost-optimal window width for an exponent of [nb] bits (1..7). *)
val width_for : int -> int

(** Recode an exponent given as {!Nat.t} limbs.  The schedule is scanned
    from an explicit bit table built in one pass over the limbs — no
    per-bit division.  [width] forces a window width (testing/ablation);
    default is {!width_for} of the exponent's bit length. *)
val recode : ?width:int -> Nat.t -> t

(** Exact modular multiplications an engine performs executing the
    schedule, including building the odd-powers table (the updated
    Table II closed form asserts against this). *)
val cost : t -> int

(** The exponent the schedule computes — replay oracle for tests. *)
val to_exponent : t -> Z.t
