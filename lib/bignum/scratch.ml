(* Per-domain reusable limb workspaces for the bignum engines.

   The limb-level kernels (CIOS Montgomery, Barrett's windowed reduction,
   Wexp recoding) each need a handful of temporary buffers per operation.
   Allocating them per call is what drove the ~10^10 minor GC words per
   run that BENCH_keypool.json exposed, so instead every domain owns a
   small pool of growable [int array] slots, reached through
   [Domain.DLS].  A single global key (rather than one key per context)
   keeps the DLS table bounded no matter how many Montgomery/Barrett
   contexts a server creates, and per-domain storage makes the engines
   safe under [Serve.serve ~pool], which runs responds concurrently on a
   shared server whose Schnorr context is shared across domains.

   Slot discipline:
   - Each distinct buffer that can be live at the same moment gets its
     own slot id, assigned once below.  Two engines may share an id only
     if their uses can never nest (they cannot here: every user is a
     leaf computation that performs no callbacks and never re-enters the
     bignum engines through a different slot's borrow).
   - A borrow ([get ~slot len]) is valid until the next [get] of the
     SAME slot on the same domain.  Callers must not retain the array
     beyond their operation or hand it to user code.
   - Returned buffers carry stale contents from previous borrows;
     callers overwrite or [Array.fill] the window they use. *)

let slot_count = 12

(* Slot registry — the single place documenting which buffers coexist.
   Montgomery's CIOS core holds [mont_acc] while its operands may sit in
   [mont_op_a]/[mont_op_b]; the squaring path holds [mont_prod] instead
   of [mont_acc].  Barrett's windowed reduction holds the product, the
   q1*mu product and the folded remainder simultaneously.  Wexp recoding
   holds its bit table and ops tape at once.  No Montgomery op calls
   into Barrett or Wexp (and vice versa) while holding a borrow, but the
   ids are kept globally distinct anyway so the invariant is structural
   rather than behavioural. *)
let mont_acc = 0
let mont_prod = 1
let mont_op_a = 2
let mont_op_b = 3
let barrett_prod = 4
let barrett_qmu = 5
let barrett_r = 6
let wexp_bits = 7
let wexp_ops = 8

let key : int array array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make slot_count [||])

(* Borrow slot [slot] with capacity at least [len] limbs.  Growth is
   geometric so a slot ratchets up to its steady-state size in O(log)
   reallocations and then never allocates again. *)
let get ~slot (len : int) : int array =
  let pool = Domain.DLS.get key in
  let b = Array.unsafe_get pool slot in
  if Array.length b >= len then b
  else begin
    let cap = max len (2 * Array.length b) in
    let nb = Array.make cap 0 in
    pool.(slot) <- nb;
    nb
  end
