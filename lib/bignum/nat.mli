(** Low-level arbitrary-precision natural numbers.

    Little-endian [int array] limbs in base [2{^26}], canonical (no trailing
    zero limbs).  This is the mutable-buffer engine under {!Z}; application
    code should normally use {!Z}. *)

type t = int array

val limb_bits : int
val base : int
val mask : int

val zero : t
val one : t
val two : t

val is_zero : t -> bool

(** Drop trailing zero limbs. *)
val normalize : t -> t

(** Whether the value is canonical and every limb is in range (testing). *)
val check_canonical : t -> bool

val of_int : int -> t
val to_int_opt : t -> int option

val compare : t -> t -> int
val equal : t -> t -> bool

(** Significant bits; 0 for zero. *)
val numbits : t -> int

val testbit : t -> int -> bool

val add : t -> t -> t

(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)
val sub : t -> t -> t

val add_int : t -> int -> t
val sub_int : t -> int -> t

(** [addmul_1 r off a m] adds [a * m] (single-limb [m]) into [r] starting
    at limb [off]; [r] must be long enough for the final carry.  The
    building block of multiplication and Montgomery's REDC sweep. *)
val addmul_1 : int array -> int -> t -> int -> unit

(** [addmul_off r roff a aoff alen m] adds [m * a[aoff..aoff+alen-1]]
    into [r] at limb [roff]: the window form of {!addmul_1}, letting the
    engines multiply views of larger scratch buffers in place. *)
val addmul_off : int array -> int -> int array -> int -> int -> int -> unit

(** Like {!addmul_off} but never writes at or beyond limb [cut] of [r]
    (absolute index): the low-product building block of Barrett's
    windowed reduction. *)
val addmul_off_trunc :
  int array -> int -> int array -> int -> int -> int -> cut:int -> unit

(** [mul_into dst a la b lb] overwrites [dst[0..la+lb-1]] with
    [a[0..la-1] * b[0..lb-1]].  Fixed-width windows: trailing zero limbs
    are accepted (no canonical-form requirement), which is the currency
    of the scratch-buffer engines.  [dst] must not alias the inputs. *)
val mul_into : int array -> int array -> int -> int array -> int -> unit

(** [sqr_into dst a n] overwrites [dst[0..2n-1]] with the square of
    [a[0..n-1]] using the half-product scheme of {!sqr_schoolbook};
    same contract as {!mul_into}. *)
val sqr_into : int array -> int array -> int -> unit

(** Size ladder: schoolbook below [karatsuba_threshold] limbs, Karatsuba
    2-way up to [toom3_threshold], Toom-Cook 3-way above.  Exposed so
    tests can pin the tuning and exercise the cutoff boundaries. *)
val karatsuba_threshold : int

val toom3_threshold : int

(** Toom-Cook 3-way / Karatsuba / schoolbook by operand size. *)
val mul : t -> t -> t

val mul_schoolbook : t -> t -> t

(** [sqr a = mul a a], but each symmetric cross product is computed once
    and doubled (about half the limb products); Karatsuba squaring above
    the multiplication threshold.  The modular engines route all their
    squarings here. *)
val sqr : t -> t

val sqr_schoolbook : t -> t

(** [mul_low a b limbs] is [(a * b) mod base^limbs], computing only the
    low columns (Barrett's discarded-high-half product). *)
val mul_low : t -> t -> int -> t
val mul_int : t -> int -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** [divmod a d] is [(q, r)] with [a = q*d + r], [0 <= r < d].
    Raises [Division_by_zero] when [d] is zero. *)
val divmod : t -> t -> t * t

(** Division by a single limb [0 < d < base]. *)
val divmod_1 : t -> int -> t * int

val of_bytes_be : string -> t
val to_bytes_be : t -> string

val of_string : string -> t
val to_string : t -> string
