(* Kushilevitz–Ostrovsky PIR based on quadratic residuosity (FOCS'97) —
   the stage-2 building block of the Ghinita et al. baseline that the
   paper compares against (§V, Table II).

   The database is an a-row × b-column matrix.  To fetch column j*, the
   user sends one number per column: a random QR for every j <> j* and a
   pseudo-square (Jacobi symbol +1 but a non-residue) for j*.  For each
   row the server multiplies together y_j for matrix bits 1 and y_j^2 for
   bits 0; the row product is a QR iff the target bit is 0.  Only the user
   (who knows the factorisation of N) can test residuosity.

   Blocks of s bits are retrieved bit-plane by bit-plane: the server
   computes one row-product per (row, bit position), i.e. a*b*s modular
   multiplications, and ships a*s group elements — the O(sqrt(t)) matrix
   traffic that Table II contrasts with Gentry–Ramzan's two elements. *)

open Lbq_bignum
open Lbq_numth
module Counters = Lbq_metrics.Counters

(* ------------------------------------------------------------------ *)
(* Keys                                                                 *)
(* ------------------------------------------------------------------ *)

type public_key = { n : Z.t; ctx : Barrett.t }

type private_key = { pub : public_key; p : Z.t; q : Z.t }

let public_of_private sk = sk.pub
let modulus pk = pk.n

(* Blum-style modulus: p, q = 3 (mod 4) makes -1 a canonical pseudo-square,
   but we draw pseudo-squares generically via Legendre checks anyway. *)
let keygen ~bits rand =
  let half = bits / 2 in
  let rec blum_prime () =
    let p = Primegen.random_prime ~bits:half rand in
    if Z.to_int (Z.erem p (Z.of_int 4)) = 3 then p else blum_prime ()
  in
  let p = blum_prime () in
  let rec distinct () =
    let q = blum_prime () in
    if Z.equal p q then distinct () else q
  in
  let q = distinct () in
  let n = Z.mul p q in
  { pub = { n; ctx = Barrett.create n }; p; q }

(* Is x a quadratic residue mod N?  Requires the factorisation. *)
let is_qr sk (x : Z.t) : bool =
  Jacobi.legendre x sk.p = 1 && Jacobi.legendre x sk.q = 1

(* Random unit square mod N. *)
let random_qr pk rand =
  let rec go () =
    let r = Z.random_unit ~bound:pk.n rand in
    if Z.equal (Z.gcd r pk.n) Z.one then Barrett.mulmod pk.ctx r r else go ()
  in
  go ()

(* Random pseudo-square: Jacobi +1, Legendre -1 mod both factors. *)
let random_pseudo_square sk rand =
  let pk = sk.pub in
  let rec go () =
    let u = Z.random_unit ~bound:pk.n rand in
    if Z.equal (Z.gcd u pk.n) Z.one
       && Jacobi.legendre u sk.p = -1 && Jacobi.legendre u sk.q = -1
    then u
    else go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Protocol                                                             *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type state = { sk : private_key; target_col : int; metrics : Counters.t }

  (* One element per column; only the target column gets a non-residue. *)
  let query ?(metrics = Counters.null) ~sk ~cols ~target_col rand
    : state * Z.t array =
    if target_col < 0 || target_col >= cols then
      invalid_arg "Qr_pir.Client.query: column out of range";
    let pk = sk.pub in
    let q =
      Array.init cols (fun j ->
          if j = target_col then random_pseudo_square sk rand
          else random_qr pk rand)
    in
    Counters.user_bytes metrics (cols * ((Z.numbits pk.n + 7) / 8));
    { sk; target_col; metrics }, q

  let target_col st = st.target_col
  let metrics st = st.metrics

  (* The bit at [target_row] of one bit-plane answer. *)
  let decode_bit (st : state) (z : Z.t array) ~target_row : bool =
    if target_row < 0 || target_row >= Array.length z then
      invalid_arg "Qr_pir.Client.decode_bit: row out of range";
    not (is_qr st.sk z.(target_row))

  (* Reassemble a whole block (one bit per plane, MSB-first). *)
  let decode_block (st : state) (planes : Z.t array array) ~target_row : string
    =
    let nbits = Array.length planes in
    if nbits mod 8 <> 0 then invalid_arg "Qr_pir.Client.decode_block: bits";
    let nbytes = nbits / 8 in
    String.init nbytes (fun byte ->
        let v = ref 0 in
        for bit = 0 to 7 do
          let plane = planes.((byte * 8) + bit) in
          v := (!v lsl 1) lor (if decode_bit st plane ~target_row then 1 else 0)
        done;
        Char.chr !v)
end

module Server = struct
  (* The server holds no key material: the modulus arrives with each
     query (the client owns N and its factorisation). *)
  type t = {
    rows : int;
    cols : int;
    block_len : int;               (* bytes per block *)
    blocks : string array array;   (* rows x cols *)
    metrics : Counters.t;
  }

  let create ?(metrics = Counters.null) (blocks : string array array) =
    let rows = Array.length blocks in
    if rows = 0 then invalid_arg "Qr_pir.Server.create: empty matrix";
    let cols = Array.length blocks.(0) in
    if cols = 0 then invalid_arg "Qr_pir.Server.create: empty row";
    let block_len = String.length blocks.(0).(0) in
    Array.iter
      (fun row ->
        if Array.length row <> cols then
          invalid_arg "Qr_pir.Server.create: ragged matrix";
        Array.iter
          (fun b ->
            if String.length b <> block_len then
              invalid_arg "Qr_pir.Server.create: blocks must share one length")
          row)
      blocks;
    { rows; cols; block_len; blocks; metrics }

  let rows t = t.rows
  let cols t = t.cols
  let block_len t = t.block_len

  let block t ~row ~col =
    if row < 0 || row >= t.rows || col < 0 || col >= t.cols then
      invalid_arg "Qr_pir.Server.block: out of range";
    t.blocks.(row).(col)

  (* Streaming update: the server holds the raw blocks (no key material,
     no derived encoding), so a single-block change is one array store.
     Responses after the swap are byte-identical to a server rebuilt
     from the updated matrix. *)
  let set_block t ~row ~col (b : string) =
    if row < 0 || row >= t.rows || col < 0 || col >= t.cols then
      invalid_arg "Qr_pir.Server.set_block: out of range";
    if String.length b <> t.block_len then
      invalid_arg "Qr_pir.Server.set_block: block length";
    t.blocks.(row).(col) <- b

  let bit t ~row ~col ~plane =
    let byte = plane / 8 and off = plane mod 8 in
    (Char.code t.blocks.(row).(col).[byte] lsr (7 - off)) land 1 = 1

  (* One bit-plane: z_r = prod_j (y_j if bit else y_j^2); a*b mults
     (plus squarings), the Table II server cost.  [ctx] reduces modulo
     the modulus that came with the query. *)
  let respond_plane t ~(ctx : Barrett.t) (query : Z.t array) ~plane
    : Z.t array =
    if Array.length query <> t.cols then
      invalid_arg "Qr_pir.Server.respond_plane: query width mismatch";
    let mults = ref 0 in
    let z =
      Barrett.counting ctx mults (fun () ->
          Array.init t.rows (fun r ->
              let acc = ref Z.one in
              for j = 0 to t.cols - 1 do
                let y = query.(j) in
                let factor =
                  if bit t ~row:r ~col:j ~plane then y
                  else Barrett.mulmod ctx y y
                in
                acc := Barrett.mulmod ctx !acc factor
              done;
              !acc))
    in
    Counters.server_mult t.metrics !mults;
    z

  (* All bit-planes of the blocks: the full a x (8*block_len) answer. *)
  let respond t ~(n : Z.t) (query : Z.t array) : Z.t array array =
    if Z.leq n Z.one then invalid_arg "Qr_pir.Server.respond: bad modulus";
    let ctx = Barrett.create n in
    let nbits = 8 * t.block_len in
    let planes =
      Array.init nbits (fun plane -> respond_plane t ~ctx query ~plane)
    in
    Counters.server_bytes t.metrics (t.rows * nbits * ((Z.numbits n + 7) / 8));
    planes

  (* Answer k queries — each carrying its own modulus — with ONE
     traversal of the database bits: every (plane, row, col) bit is read
     and branched on once and applied to all k accumulators, instead of
     once per query.  Each query keeps its own Barrett context and its
     own multiplication ORDER (acc_q picks up exactly the factors, in
     exactly the sequence, a sequential [respond] would give it), so the
     answers and per-query measured mults are byte-identical to k
     sequential calls.  Validation mirrors [respond]/[respond_plane]
     and runs before any work. *)
  let respond_batch t (queries : (Z.t * Z.t array) array)
    : Z.t array array array =
    Array.iter
      (fun ((n : Z.t), (q : Z.t array)) ->
        if Z.leq n Z.one then invalid_arg "Qr_pir.Server.respond: bad modulus";
        if Array.length q <> t.cols then
          invalid_arg "Qr_pir.Server.respond_plane: query width mismatch")
      queries;
    let k = Array.length queries in
    let ctxs = Array.map (fun (n, _) -> Barrett.create n) queries in
    let counts = Array.map (fun _ -> ref 0) queries in
    Array.iteri (fun i ctx -> Barrett.set_counter ctx (Some counts.(i))) ctxs;
    let nbits = 8 * t.block_len in
    let out =
      Array.init k (fun _ ->
          Array.init nbits (fun _ -> Array.make t.rows Z.one))
    in
    let accs = Array.make k Z.one in
    for plane = 0 to nbits - 1 do
      for r = 0 to t.rows - 1 do
        Array.fill accs 0 k Z.one;
        for j = 0 to t.cols - 1 do
          let b = bit t ~row:r ~col:j ~plane in
          for q = 0 to k - 1 do
            let ctx = ctxs.(q) in
            let y = (snd queries.(q)).(j) in
            let factor = if b then y else Barrett.mulmod ctx y y in
            accs.(q) <- Barrett.mulmod ctx accs.(q) factor
          done
        done;
        for q = 0 to k - 1 do
          out.(q).(plane).(r) <- accs.(q)
        done
      done
    done;
    Array.iter (fun ctx -> Barrett.set_counter ctx None) ctxs;
    Array.iteri
      (fun q (n, _) ->
        Counters.server_mult t.metrics !(counts.(q));
        Counters.server_bytes t.metrics
          (t.rows * nbits * ((Z.numbits n + 7) / 8)))
      queries;
    out
end

(* One full block fetch. *)
let fetch ?metrics ~(server : Server.t) ~sk ~row ~col rand : string =
  let st, q =
    Client.query ?metrics ~sk ~cols:(Server.cols server) ~target_col:col rand
  in
  let planes = Server.respond server ~n:sk.pub.n q in
  Client.decode_block st planes ~target_row:row
