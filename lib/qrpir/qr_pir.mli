(** Kushilevitz–Ostrovsky PIR from quadratic residuosity (FOCS'97) — the
    stage-2 building block of the Ghinita et al. baseline (Table II's
    comparison row).

    The database is an a×b matrix of fixed-length blocks; one block fetch
    costs [b] elements up, [a * 8*block_len] elements down, and
    [a*b] multiplications per bit-plane on the server. *)

open Lbq_bignum
module Counters = Lbq_metrics.Counters

type public_key
type private_key

val public_of_private : private_key -> public_key
val modulus : public_key -> Z.t

(** Blum modulus [N = p*q], [p, q = 3 (mod 4)]. *)
val keygen : bits:int -> (int -> string) -> private_key

(** Residuosity test (requires the factorisation). *)
val is_qr : private_key -> Z.t -> bool

val random_qr : public_key -> (int -> string) -> Z.t

(** Jacobi +1 non-residue. *)
val random_pseudo_square : private_key -> (int -> string) -> Z.t

module Client : sig
  type state

  (** One group element per column; only the target column is a
      pseudo-square. *)
  val query :
    ?metrics:Counters.t -> sk:private_key -> cols:int -> target_col:int ->
    (int -> string) -> state * Z.t array

  val target_col : state -> int
  val metrics : state -> Counters.t

  (** Bit of one plane answer at the target row: 1 iff non-residue. *)
  val decode_bit : state -> Z.t array -> target_row:int -> bool

  (** Reassemble a block from all its bit-plane answers (MSB-first). *)
  val decode_block : state -> Z.t array array -> target_row:int -> string
end

module Server : sig
  type t

  (** The server holds no key material: the client owns the modulus and
      its factorisation, and the modulus arrives with each query. *)
  val create : ?metrics:Counters.t -> string array array -> t

  val rows : t -> int
  val cols : t -> int
  val block_len : t -> int

  (** The current block at [(row, col)].  Raises [Invalid_argument] out
      of range. *)
  val block : t -> row:int -> col:int -> string

  (** Streaming update: replace the block at [(row, col)].  The server
      holds the raw blocks, so this is one store; later responses are
      byte-identical to a server rebuilt from the updated matrix.
      Raises [Invalid_argument] on a bad target or block length. *)
  val set_block : t -> row:int -> col:int -> string -> unit

  (** One bit-plane answer: a row-product per row, reduced through [ctx]. *)
  val respond_plane :
    t -> ctx:Lbq_bignum.Barrett.t -> Z.t array -> plane:int -> Z.t array

  (** All bit-planes (the full matrix answer the baseline ships),
      modulo the query's [n]. *)
  val respond : t -> n:Z.t -> Z.t array -> Z.t array array

  (** Answer k queries [(n, ys)] with one traversal of the database bits
      (each bit read and branched on once, applied to all k per-query
      accumulators).  Per-query multiplication order is preserved, so
      answers and measured mults are identical to k sequential
      {!respond} calls. *)
  val respond_batch : t -> (Z.t * Z.t array) array -> Z.t array array array
end

(** One full block fetch: query, respond, decode. *)
val fetch :
  ?metrics:Counters.t -> server:Server.t -> sk:private_key -> row:int ->
  col:int -> (int -> string) -> string
